// Scalar-vs-batched bit-equivalence: the SoA kernel's contract is that every
// TrialResult it emits is bit-for-bit the one the scalar ProtocolSimulation
// produces from the same per-trial stream. The suite checks that contract
// directly (per-trial, per-field, exact double equality) across every
// protocol for both injector families, checks thread-count invariance of the
// exported JSONL through the batched path, and closes with a property test
// over randomly drawn platforms.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "model/model_api.hpp"
#include "proptest.hpp"
#include "sim/batch_kernel.hpp"
#include "sim/export.hpp"
#include "sim/protocol_sim.hpp"
#include "sim/runner.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace {

using namespace dckpt;

sim::SimConfig make_config(model::Protocol protocol, double mtbf,
                           std::uint64_t nodes, double period, double t_base,
                           bool stop_on_fatal) {
  sim::SimConfig config;
  config.protocol = protocol;
  config.params = model::base_scenario().at_phi_ratio(0.25).with_mtbf(mtbf);
  config.params.nodes = nodes;
  config.period = period;
  config.t_base = t_base;
  config.stop_on_fatal = stop_on_fatal;
  return config;
}

/// The scalar reference: per-trial streams derived exactly as the runner
/// derives them, one ProtocolSimulation per trial.
std::vector<sim::TrialResult> scalar_trials(const sim::SimConfig& config,
                                            const sim::MonteCarloOptions& options,
                                            std::size_t trials) {
  std::vector<sim::TrialResult> results;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const std::uint64_t stream_seed =
        options.seed ^ (0x9e3779b97f4a7c15ULL * (trial + 1));
    const util::Xoshiro256ss stream(stream_seed);
    std::unique_ptr<sim::FailureInjector> injector;
    if (options.weibull) {
      injector = std::make_unique<sim::PerNodeInjector>(
          *options.weibull, config.params.nodes, stream);
    } else {
      injector = std::make_unique<sim::PlatformExponentialInjector>(
          config.params.mtbf, config.params.nodes, stream);
    }
    sim::ProtocolSimulation simulation(config, std::move(injector),
                                       stream_seed);
    results.push_back(simulation.run());
  }
  return results;
}

std::vector<sim::TrialResult> batched_trials(const sim::SimConfig& config,
                                             const sim::MonteCarloOptions& options,
                                             std::size_t trials) {
  std::vector<sim::TrialResult> results;
  sim::BatchKernelStats stats;
  sim::run_trials_batched(
      config, options, 0, trials,
      [&results](const sim::TrialResult& r) { results.push_back(r); }, stats);
  return results;
}

/// Exact double equality on purpose: the contract is bit-identity, not
/// closeness.
std::optional<std::string> compare_trial(const sim::TrialResult& s,
                                         const sim::TrialResult& b,
                                         std::size_t trial) {
  const auto mismatch = [&](const char* field, double sv,
                            double bv) -> std::optional<std::string> {
    std::ostringstream out;
    out.precision(17);
    out << "trial " << trial << " field " << field << ": scalar " << sv
        << " vs batched " << bv;
    return out.str();
  };
  if (s.makespan != b.makespan) return mismatch("makespan", s.makespan, b.makespan);
  if (s.t_base != b.t_base) return mismatch("t_base", s.t_base, b.t_base);
  if (s.failures != b.failures) {
    return mismatch("failures", static_cast<double>(s.failures),
                    static_cast<double>(b.failures));
  }
  if (s.fatal != b.fatal) return mismatch("fatal", s.fatal, b.fatal);
  if (s.fatal_time != b.fatal_time) {
    return mismatch("fatal_time", s.fatal_time, b.fatal_time);
  }
  if (s.diverged != b.diverged) return mismatch("diverged", s.diverged, b.diverged);
  if (s.time_checkpointing != b.time_checkpointing) {
    return mismatch("time_checkpointing", s.time_checkpointing,
                    b.time_checkpointing);
  }
  if (s.time_down != b.time_down) {
    return mismatch("time_down", s.time_down, b.time_down);
  }
  if (s.time_recovering != b.time_recovering) {
    return mismatch("time_recovering", s.time_recovering, b.time_recovering);
  }
  if (s.time_reexecuting != b.time_reexecuting) {
    return mismatch("time_reexecuting", s.time_reexecuting,
                    b.time_reexecuting);
  }
  if (s.time_at_risk != b.time_at_risk) {
    return mismatch("time_at_risk", s.time_at_risk, b.time_at_risk);
  }
  if (s.time_verifying != b.time_verifying) {
    return mismatch("time_verifying", s.time_verifying, b.time_verifying);
  }
  if (s.sdc_injected != b.sdc_injected) {
    return mismatch("sdc_injected", static_cast<double>(s.sdc_injected),
                    static_cast<double>(b.sdc_injected));
  }
  if (s.verifications_run != b.verifications_run) {
    return mismatch("verifications_run",
                    static_cast<double>(s.verifications_run),
                    static_cast<double>(b.verifications_run));
  }
  if (s.sdc_detected != b.sdc_detected) {
    return mismatch("sdc_detected", static_cast<double>(s.sdc_detected),
                    static_cast<double>(b.sdc_detected));
  }
  if (s.rollback_depth != b.rollback_depth) {
    return mismatch("rollback_depth", static_cast<double>(s.rollback_depth),
                    static_cast<double>(b.rollback_depth));
  }
  if (s.time_proactive != b.time_proactive) {
    return mismatch("time_proactive", s.time_proactive, b.time_proactive);
  }
  if (s.alarms_raised != b.alarms_raised) {
    return mismatch("alarms_raised", static_cast<double>(s.alarms_raised),
                    static_cast<double>(b.alarms_raised));
  }
  if (s.proactive_ckpts != b.proactive_ckpts) {
    return mismatch("proactive_ckpts",
                    static_cast<double>(s.proactive_ckpts),
                    static_cast<double>(b.proactive_ckpts));
  }
  if (s.true_predictions != b.true_predictions) {
    return mismatch("true_predictions",
                    static_cast<double>(s.true_predictions),
                    static_cast<double>(b.true_predictions));
  }
  if (s.missed_failures != b.missed_failures) {
    return mismatch("missed_failures",
                    static_cast<double>(s.missed_failures),
                    static_cast<double>(b.missed_failures));
  }
  return std::nullopt;
}

void expect_equivalent(const sim::SimConfig& config,
                       const sim::MonteCarloOptions& options,
                       std::size_t trials) {
  const auto scalar = scalar_trials(config, options, trials);
  const auto batched = batched_trials(config, options, trials);
  ASSERT_EQ(scalar.size(), batched.size());
  for (std::size_t i = 0; i < trials; ++i) {
    const auto failure = compare_trial(scalar[i], batched[i], i);
    EXPECT_FALSE(failure.has_value())
        << *failure << " (protocol "
        << model::protocol_name(config.protocol) << ")";
    if (failure) return;  // one detailed failure beats 50 copies
  }
}

TEST(BatchKernel, BitIdenticalToScalarExponentialAllProtocols) {
  for (const model::Protocol protocol : model::kAllProtocols) {
    const auto config = make_config(protocol, 500.0, 12, 100.0, 5000.0,
                                    /*stop_on_fatal=*/false);
    sim::MonteCarloOptions options;
    options.seed = 4242;
    expect_equivalent(config, options, 50);
  }
}

TEST(BatchKernel, BitIdenticalToScalarWeibullAllProtocols) {
  for (const model::Protocol protocol : model::kAllProtocols) {
    const auto config = make_config(protocol, 500.0, 12, 100.0, 5000.0,
                                    /*stop_on_fatal=*/false);
    sim::MonteCarloOptions options;
    options.seed = 777;
    options.weibull =
        util::Weibull::from_mean(0.7, config.params.node_mtbf());
    expect_equivalent(config, options, 50);
  }
}

TEST(BatchKernel, BitIdenticalWithSilentErrorsExponentialAllProtocols) {
  // Verification on: the batched kernel must leave its fast path and still
  // reproduce strike arrivals, Verify phases, rollback ladders, and
  // fatal-accept bookkeeping event-for-event.
  for (const model::Protocol protocol : model::kAllProtocols) {
    auto config = make_config(protocol, 500.0, 12, 100.0, 5000.0,
                              /*stop_on_fatal=*/false);
    config.sdc_rate = 1.0 / 800.0;
    config.verify_cost = 0.5;
    config.verify_every = 3;
    config.keep_last = 3;
    sim::MonteCarloOptions options;
    options.seed = 20260809;
    expect_equivalent(config, options, 50);
  }
}

TEST(BatchKernel, BitIdenticalWithSilentErrorsWeibull) {
  // Strike stream and Weibull failure stream interleave; the tie-break
  // (strikes first) must agree across engines.
  for (const model::Protocol protocol :
       {model::Protocol::DoubleNbl, model::Protocol::DoubleBof,
        model::Protocol::Triple}) {
    auto config = make_config(protocol, 500.0, 12, 100.0, 5000.0,
                              /*stop_on_fatal=*/false);
    config.sdc_rate = 1.0 / 600.0;
    config.verify_cost = 1.0;
    config.verify_every = 2;
    config.keep_last = 2;
    sim::MonteCarloOptions options;
    options.seed = 424243;
    options.weibull =
        util::Weibull::from_mean(0.7, config.params.node_mtbf());
    expect_equivalent(config, options, 50);
  }
}

TEST(BatchKernel, BitIdenticalWithSilentErrorsStopOnFatal) {
  // keep_last=1 makes detected corruption frequently un-rollbackable, so
  // fatal-accept and stop_on_fatal interact with the Verify phase.
  for (const model::Protocol protocol :
       {model::Protocol::DoubleNbl, model::Protocol::Triple}) {
    auto config = make_config(protocol, 400.0, 6, 0.0, 6000.0,
                              /*stop_on_fatal=*/true);
    config.period =
        1.25 * model::min_period(protocol, config.params);
    config.sdc_rate = 1.0 / 400.0;
    config.verify_cost = 0.25;
    config.verify_every = 4;
    config.keep_last = 1;
    sim::MonteCarloOptions options;
    options.seed = 31337;
    expect_equivalent(config, options, 80);
  }
}

TEST(BatchKernel, BitIdenticalWithStopOnFatal) {
  // Dense failures on a small platform so fatal buddy hits actually occur;
  // stop_on_fatal exercises the early-return path and fatal_time capture.
  for (const model::Protocol protocol :
       {model::Protocol::DoubleNbl, model::Protocol::Triple}) {
    auto config = make_config(protocol, 120.0, 6, 60.0, 4000.0,
                              /*stop_on_fatal=*/true);
    // mtbf=120 on 6 nodes is so brutal that a hand-picked period sits below
    // min_period; take a feasible one from the model instead.
    config.period =
        1.25 * model::min_period(protocol, config.params);
    sim::MonteCarloOptions options;
    options.seed = 99;
    expect_equivalent(config, options, 80);
  }
}

TEST(BatchKernel, BitIdenticalWithFaultPredictionAllProtocols) {
  // Fault prediction on: per-failure predictor draws, true-alarm leads,
  // Poisson false alarms, Proactive phases and the prediction scoreboard
  // must agree bit-for-bit (prediction disables the fast path).
  for (const model::Protocol protocol : model::kAllProtocols) {
    auto config = make_config(protocol, 500.0, 12, 100.0, 5000.0,
                              /*stop_on_fatal=*/false);
    config.pred_precision = 0.7;
    config.pred_recall = 0.6;
    config.pred_window = 30.0;
    config.proactive_cost = 2.0;
    sim::MonteCarloOptions options;
    options.seed = 0xabcd;
    expect_equivalent(config, options, 50);
  }
}

TEST(BatchKernel, BitIdenticalWithJustInTimePrediction) {
  // w = 0: every true alarm leads by exactly C_p, the tightest interleaving
  // of Proactive phases with strikes and failures. Verification on too, so
  // alarm > strike > failure tie ordering is fully exercised.
  for (const model::Protocol protocol :
       {model::Protocol::DoubleNbl, model::Protocol::Triple}) {
    auto config = make_config(protocol, 500.0, 12, 100.0, 5000.0,
                              /*stop_on_fatal=*/false);
    config.pred_precision = 0.5;  // false-alarm heavy
    config.pred_recall = 0.8;
    config.pred_window = 0.0;
    config.proactive_cost = 1.5;
    config.sdc_rate = 1.0 / 800.0;
    config.verify_cost = 0.5;
    config.verify_every = 3;
    config.keep_last = 3;
    sim::MonteCarloOptions options;
    options.seed = 0x5eed;
    expect_equivalent(config, options, 50);
  }
}

TEST(BatchKernel, BitIdenticalWithPredictionWeibull) {
  // Per-node Weibull failure streams under prediction: the predictor keys
  // its decision on the pending failure time, which replays after rollbacks
  // -- the decide-once-per-failure-time idempotence must hold identically.
  auto config = make_config(model::Protocol::DoubleNbl, 500.0, 12, 100.0,
                            5000.0, /*stop_on_fatal=*/false);
  config.pred_precision = 0.9;
  config.pred_recall = 0.5;
  config.pred_window = 50.0;
  config.proactive_cost = 3.0;
  sim::MonteCarloOptions options;
  options.seed = 321;
  options.weibull = util::Weibull::from_mean(0.7, config.params.node_mtbf());
  expect_equivalent(config, options, 50);
}

TEST(BatchKernel, BitIdenticalWithDifferentialCheckpointsAllProtocols) {
  // The dcp axis reshapes the period geometry (shorter exchange parts,
  // longer recovery) before any event fires; both engines must build the
  // same geometry from SimConfig::dcp and stay event-for-event identical.
  for (const model::Protocol protocol : model::kAllProtocols) {
    auto config = make_config(protocol, 500.0, 12, 100.0, 5000.0,
                              /*stop_on_fatal=*/false);
    config.dcp.stack_size = 6;
    config.dcp.dirty_fraction = 0.15;
    config.dcp.hash_overhead = 0.02;
    sim::MonteCarloOptions options;
    options.seed = 909090;
    expect_equivalent(config, options, 50);
  }
}

TEST(BatchKernel, BitIdenticalWithDcpWeibullSdcAndPredictorMix) {
  // The acceptance mix: dirty-fraction geometry composing with clustered
  // (Weibull) failures, silent-error verification and fault prediction in
  // one campaign -- every axis at once, still bit-identical.
  for (const model::Protocol protocol :
       {model::Protocol::DoubleNbl, model::Protocol::Triple}) {
    auto config = make_config(protocol, 500.0, 12, 100.0, 5000.0,
                              /*stop_on_fatal=*/false);
    config.dcp.stack_size = 4;
    config.dcp.dirty_fraction = 0.2;
    config.dcp.hash_overhead = 0.01;
    config.sdc_rate = 1.0 / 700.0;
    config.verify_cost = 0.5;
    config.verify_every = 3;
    config.keep_last = 2;
    config.pred_precision = 0.7;
    config.pred_recall = 0.5;
    config.pred_window = 30.0;
    config.proactive_cost = 2.0;
    sim::MonteCarloOptions options;
    options.seed = 515151;
    options.weibull =
        util::Weibull::from_mean(0.7, config.params.node_mtbf());
    expect_equivalent(config, options, 50);
  }
}

TEST(BatchKernel, BitIdenticalOnFastPathDominatedCampaign) {
  // Sparse failures: long event-free stretches exercise the multi-period
  // fast runs, including their interaction with completion and cap guards.
  const auto config = make_config(model::Protocol::DoubleNbl, 50000.0, 12,
                                  0.0, 200000.0, /*stop_on_fatal=*/false);
  auto cfg = config;
  cfg.period = model::optimal_period_closed_form(cfg.protocol, cfg.params).period;
  sim::MonteCarloOptions options;
  options.seed = 5;
  expect_equivalent(cfg, options, 40);
}

TEST(BatchKernel, ExportedJsonlInvariantAcrossThreadCounts) {
  const auto config = make_config(model::Protocol::Triple, 400.0, 12, 90.0,
                                  8000.0, /*stop_on_fatal=*/false);
  sim::MonteCarloOptions options;
  options.trials = 300;
  options.seed = 11;
  options.metrics = sim::MetricsSpec{};
  std::string dumps[2];
  const std::size_t threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    auto o = options;
    o.threads = threads[i];
    const auto result = sim::run_monte_carlo(config, o);
    std::ostringstream out;
    sim::write_metrics_jsonl(out, result);
    dumps[i] = out.str();
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(BatchKernel, AggregateMatchesScalarEngineExactly) {
  const auto config = make_config(model::Protocol::DoubleBof, 300.0, 12,
                                  80.0, 6000.0, /*stop_on_fatal=*/false);
  sim::MonteCarloOptions options;
  options.trials = 200;
  options.seed = 3;
  options.threads = 2;
  options.metrics = sim::MetricsSpec{};
  auto batched_options = options;
  batched_options.engine = sim::SimEngine::kBatched;
  auto scalar_options = options;
  scalar_options.engine = sim::SimEngine::kScalar;
  const auto b = sim::run_monte_carlo(config, batched_options);
  const auto s = sim::run_monte_carlo(config, scalar_options);
  // Same trials in the same chunk layout through the same Welford adds:
  // the aggregates must agree to the last bit, not within a tolerance.
  EXPECT_EQ(s.waste.mean(), b.waste.mean());
  EXPECT_EQ(s.waste.variance(), b.waste.variance());
  EXPECT_EQ(s.makespan.mean(), b.makespan.mean());
  EXPECT_EQ(s.makespan.min(), b.makespan.min());
  EXPECT_EQ(s.makespan.max(), b.makespan.max());
  EXPECT_EQ(s.failures.sum(), b.failures.sum());
  EXPECT_EQ(s.risk_time.mean(), b.risk_time.mean());
  EXPECT_EQ(s.success.estimate(), b.success.estimate());
  EXPECT_EQ(s.diverged, b.diverged);
  ASSERT_TRUE(s.metrics && b.metrics);
  EXPECT_EQ(s.metrics->slowdown.total_count(), b.metrics->slowdown.total_count());
  EXPECT_EQ(s.metrics->slowdown.quantile(0.5), b.metrics->slowdown.quantile(0.5));
  EXPECT_EQ(s.metrics->degenerate, b.metrics->degenerate);
  // Kernel counters populate only through the batched engine.
  EXPECT_EQ(b.kernel.lanes, options.trials);
  EXPECT_GT(b.kernel.waves, 0u);
  EXPECT_EQ(s.kernel.lanes, 0u);
}

struct DrawnPlatform {
  model::Protocol protocol = model::Protocol::DoubleNbl;
  double mtbf = 500.0;
  std::uint64_t nodes = 12;
  double t_base = 5000.0;
  bool stop_on_fatal = false;
  bool weibull = false;
  double shape = 0.7;
  bool sdc = false;
  double sdc_mtbf = 800.0;
  std::uint64_t verify_every = 3;
  std::uint64_t keep_last = 2;
  std::uint64_t seed = 1;
};

TEST(BatchKernel, PropertyBitIdenticalOnRandomPlatforms) {
  proptest::ForallConfig config;
  config.seed = 0xba7c4;
  config.iterations = 60;
  const std::vector<model::Protocol> protocols(model::kAllProtocols.begin(),
                                               model::kAllProtocols.end());
  const std::vector<std::uint64_t> node_choices{6, 12, 24, 48};
  const auto draw = [&](proptest::Gen& gen) {
    DrawnPlatform p;
    p.protocol = gen.element(protocols);
    p.mtbf = gen.log_uniform(60.0, 20000.0);
    p.nodes = gen.element(node_choices);
    p.t_base = gen.log_uniform(500.0, 20000.0);
    p.stop_on_fatal = gen.boolean();
    p.weibull = gen.boolean();
    p.shape = gen.uniform(0.5, 1.5);
    p.sdc = gen.boolean();
    p.sdc_mtbf = gen.log_uniform(100.0, 20000.0);
    p.verify_every = gen.integer(1, 6);
    p.keep_last = gen.integer(1, 4);
    p.seed = gen.integer(1, 1u << 20);
    return p;
  };
  const proptest::Property<DrawnPlatform> property =
      [](const DrawnPlatform& p) -> std::optional<std::string> {
    auto config = make_config(p.protocol, p.mtbf, p.nodes, 0.0, p.t_base,
                              p.stop_on_fatal);
    const auto opt =
        model::optimal_period_closed_form(config.protocol, config.params);
    config.period = opt.period;
    if (p.sdc) {
      config.sdc_rate = 1.0 / p.sdc_mtbf;
      config.verify_cost = 0.5;
      config.verify_every = p.verify_every;
      config.keep_last = p.keep_last;
    }
    try {
      config.validate();
    } catch (const std::exception&) {
      return std::nullopt;  // undrawable platform, not a kernel defect
    }
    sim::MonteCarloOptions options;
    options.seed = p.seed;
    if (p.weibull) {
      options.weibull =
          util::Weibull::from_mean(p.shape, config.params.node_mtbf());
    }
    const auto scalar = scalar_trials(config, options, 4);
    const auto batched = batched_trials(config, options, 4);
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      if (auto failure = compare_trial(scalar[i], batched[i], i)) {
        return failure;
      }
    }
    return std::nullopt;
  };
  const proptest::Show<DrawnPlatform> show = [](const DrawnPlatform& p) {
    std::ostringstream out;
    out << "protocol=" << model::protocol_name(p.protocol)
        << " mtbf=" << p.mtbf << " nodes=" << p.nodes
        << " t_base=" << p.t_base << " stop_on_fatal=" << p.stop_on_fatal
        << " weibull=" << p.weibull << " shape=" << p.shape
        << " sdc=" << p.sdc << " sdc_mtbf=" << p.sdc_mtbf
        << " verify_every=" << p.verify_every
        << " keep_last=" << p.keep_last << " seed=" << p.seed;
    return out.str();
  };
  proptest::forall<DrawnPlatform>(config, draw, property, nullptr, show);
}

}  // namespace
