// Golden-file guards for the exported JSONL schemas (chaos runs and sweep
// points). Two layers:
//
//   *.fields  -- the sorted key set of each record (and its nested objects).
//                Removing or renaming a key fails here: the schemas are
//                append-only, so consumers written against an older schema
//                must keep working. Adding a key also fails until the golden
//                is regenerated -- that is the explicit review point.
//   *.jsonl   -- the byte-exact record for one fixed-seed configuration.
//                Any drift in values (aggregates, hashes, float formatting)
//                fails here; both sim engines must reproduce it bit-for-bit
//                (CI runs this suite under DCKPT_ENGINE=scalar too).
//
// Regenerate after an intentional schema change with
//   DCKPT_UPDATE_GOLDEN=1 ./test_golden_schemas
// and review the golden diff like any other source change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/chaos_api.hpp"
#include "model/model_api.hpp"
#include "sim/export.hpp"
#include "sim/service.hpp"
#include "sim/sweep.hpp"
#include "util/json.hpp"

namespace {

using namespace dckpt;

std::string golden_path(const std::string& name) {
  return std::string(DCKPT_GOLDEN_DIR) + "/" + name;
}

bool update_mode() {
  const char* env = std::getenv("DCKPT_UPDATE_GOLDEN");
  return env && *env && std::string(env) != "0";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  ASSERT_TRUE(out) << "cannot write golden " << path;
  out << content;
}

/// Compares `actual` against the named golden file (or rewrites it in
/// update mode). The assertion message carries the regeneration recipe.
void expect_matches_golden(const std::string& name,
                           const std::string& actual) {
  const std::string path = golden_path(name);
  if (update_mode()) {
    write_file(path, actual);
    return;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << "missing golden " << path
      << "; regenerate with DCKPT_UPDATE_GOLDEN=1";
  EXPECT_EQ(expected, actual)
      << name << " drifted from its golden copy. If the change is an "
      << "intentional append-only schema extension, regenerate with "
      << "DCKPT_UPDATE_GOLDEN=1 and review the diff; anything else is a "
      << "breaking schema change.";
}

std::string sorted_keys(const util::JsonValue& object) {
  std::string out;
  for (const auto& [key, value] : object.members()) {
    out += key;
    out += '\n';
  }
  return out;
}

// ------------------------------------------------------------- fixtures

/// Fixed-seed chaos run with the full silent-error machinery engaged
/// (strike, verification, rollback ladder), so every appended counter is
/// present and nonzero where the scenario makes it so.
chaos::ChaosRunResult golden_chaos_run() {
  chaos::ChaosCampaignConfig config;
  config.runtime.nodes = 8;
  config.runtime.cells_per_node = 48;
  config.runtime.checkpoint_interval = 12;
  config.runtime.total_steps = 96;
  config.runtime.staging_steps = 4;
  config.runtime.rereplication_delay_steps = 8;
  config.runtime.verify_every = 4;
  config.runtime.keep_last = 3;
  auto schedule = chaos::ChaosSchedule::parse("13:sdc:0,70:5");
  return chaos::run_one(config, std::move(schedule),
                        chaos::reference_run(config).final_hash);
}

/// Fixed-seed one-point sweep with the SDC axis enabled.
sim::SweepPoint golden_sweep_point() {
  sim::SweepSpec spec;
  spec.protocols = {model::Protocol::DoubleNbl};
  spec.mtbfs = {2000.0};
  spec.phi_ratios = {0.25};
  spec.base = model::base_scenario().params;
  spec.t_base_in_mtbfs = 5.0;
  spec.trials = 8;
  spec.seed = 0x90a;
  spec.threads = 1;
  spec.sdc_rate = 2e-4;
  spec.verify_cost = 10.0;
  spec.verify_every = 2;
  spec.keep_last = 3;
  auto rows = sim::run_sweep(spec);
  EXPECT_EQ(rows.size(), 1u);
  return rows.empty() ? sim::SweepPoint{} : rows.front();
}

/// Fixed-seed chaos run with differential checkpointing engaged (delta
/// cadence, a torn layer, chain replay with failover), so every PR 9
/// counter is nonzero in the byte-stable record.
chaos::ChaosRunResult golden_dcp_chaos_run() {
  chaos::ChaosCampaignConfig config;
  config.runtime.topology = ckpt::Topology::Triples;
  config.runtime.nodes = 9;
  config.runtime.cells_per_node = 48;
  config.runtime.checkpoint_interval = 12;
  config.runtime.total_steps = 96;
  config.runtime.rereplication_delay_steps = 8;
  config.runtime.dcp_stack_size = 3;
  auto schedule = chaos::ChaosSchedule::parse("25:torndelta:0:1,25:0");
  return chaos::run_one(config, std::move(schedule),
                        chaos::reference_run(config).final_hash);
}

/// Fixed-seed one-point sweep with the dcp axis enabled.
sim::SweepPoint golden_dcp_sweep_point() {
  sim::SweepSpec spec;
  spec.protocols = {model::Protocol::DoubleNbl};
  spec.mtbfs = {2000.0};
  spec.phi_ratios = {0.25};
  spec.base = model::base_scenario().params;
  spec.t_base_in_mtbfs = 5.0;
  spec.trials = 8;
  spec.seed = 0x9dc;
  spec.threads = 1;
  spec.dcp.stack_size = 6;
  spec.dcp.dirty_fraction = 0.1;
  spec.dcp.hash_overhead = 0.02;
  auto rows = sim::run_sweep(spec);
  EXPECT_EQ(rows.size(), 1u);
  return rows.empty() ? sim::SweepPoint{} : rows.front();
}

// ---------------------------------------------------------- field guards

TEST(GoldenSchema, ChaosRunFieldSets) {
  const auto run = golden_chaos_run();
  const auto v = chaos::to_json(run);
  expect_matches_golden("chaos_run.fields", sorted_keys(v));
  expect_matches_golden("chaos_run.report.fields",
                        sorted_keys(v.at("report")));
  expect_matches_golden("chaos_run.predicted.fields",
                        sorted_keys(v.at("predicted")));
}

TEST(GoldenSchema, ChaosCampaignFieldSet) {
  chaos::ChaosCampaignConfig config;
  config.runtime.nodes = 4;
  config.runtime.cells_per_node = 16;
  config.runtime.checkpoint_interval = 6;
  config.runtime.total_steps = 24;
  config.random_runs = 2;
  config.campaign_seed = 7;
  config.threads = 1;
  const auto summary = chaos::run_campaign(config);
  expect_matches_golden("chaos_campaign.fields",
                        sorted_keys(chaos::to_json(summary)));
}

TEST(GoldenSchema, SweepPointFieldSets) {
  const auto point = golden_sweep_point();
  const auto v = sim::to_json(point);
  expect_matches_golden("sweep_point.fields", sorted_keys(v));
  expect_matches_golden("sweep_point.sim.fields", sorted_keys(v.at("sim")));
}

TEST(GoldenSchema, ServeStatsFieldSets) {
  // The serve_stats record is the service's operational contract: scrapers
  // tail it from --stats-out, so the key set (including every nested
  // object) is append-only. The fixture answers one EVAL first so the
  // latency block carries its full percentile key set, and registers
  // transport counters so the server block is the real one, not a stub.
  sim::EvalService service;
  sim::ServerCounters counters;
  service.set_transport_counters(&counters);
  (void)service.handle_line("EVAL kind=period protocol=Triple mtbf=3600");
  const auto v = util::parse_json(service.handle_line("STATS"));
  expect_matches_golden("serve_stats.fields", sorted_keys(v));
  expect_matches_golden("serve_stats.cache.fields",
                        sorted_keys(v.at("cache")));
  expect_matches_golden("serve_stats.kernel.fields",
                        sorted_keys(v.at("kernel")));
  expect_matches_golden("serve_stats.latency.fields",
                        sorted_keys(v.at("latency")));
  expect_matches_golden("serve_stats.server.fields",
                        sorted_keys(v.at("server")));
  service.set_transport_counters(nullptr);
}

TEST(GoldenSchema, EvalErrorFieldSet) {
  // Typed errors are part of the wire contract too: record, code, error.
  sim::EvalService service;
  const auto v = util::parse_json(service.handle_line("EVAL kind=banana"));
  EXPECT_EQ(v.at("record").as_string(), "eval_error");
  expect_matches_golden("eval_error.fields", sorted_keys(v));
}

// ---------------------------------------------------------- value guards

TEST(GoldenSchema, ChaosRunRecordIsByteStable) {
  const auto run = golden_chaos_run();
  ASSERT_NE(run.outcome, chaos::ChaosOutcome::Violated) << run.detail;
  expect_matches_golden("chaos_run.jsonl", chaos::to_json(run).dump() + "\n");
}

TEST(GoldenSchema, SweepPointRecordIsByteStable) {
  const auto point = golden_sweep_point();
  std::ostringstream out;
  sim::write_sweep_jsonl(out, {point});
  expect_matches_golden("sweep_point.jsonl", out.str());
}

TEST(GoldenSchema, DcpChaosRunRecordIsByteStable) {
  const auto run = golden_dcp_chaos_run();
  ASSERT_NE(run.outcome, chaos::ChaosOutcome::Violated) << run.detail;
  // The fixture must actually exercise the dcp counters it guards.
  ASSERT_GT(run.report.delta_commits, 0u);
  ASSERT_GT(run.report.chain_replays, 0u);
  ASSERT_GT(run.report.torn_chain_failovers, 0u);
  expect_matches_golden("chaos_run.dcp.jsonl",
                        chaos::to_json(run).dump() + "\n");
}

TEST(GoldenSchema, DcpSweepPointRecordIsByteStable) {
  const auto point = golden_dcp_sweep_point();
  EXPECT_NE(point.model_waste_dcp, point.model_waste);
  std::ostringstream out;
  sim::write_sweep_jsonl(out, {point});
  expect_matches_golden("sweep_point.dcp.jsonl", out.str());
}

}  // namespace
