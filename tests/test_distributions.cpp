#include "util/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace dckpt::util;

/// Draws `n` samples and checks mean/variance against the analytic moments
/// within a z-bound derived from the CLT.
void check_moments(const Distribution& dist, int n = 400000) {
  Xoshiro256ss rng(0xfeedULL);
  RunningStats stats;
  for (int i = 0; i < n; ++i) {
    const double x = dist.sample(rng);
    ASSERT_GT(x, 0.0) << dist.name();
    ASSERT_TRUE(std::isfinite(x)) << dist.name();
    stats.add(x);
  }
  const double se = std::sqrt(dist.variance() / n);
  EXPECT_NEAR(stats.mean(), dist.mean(), 6.0 * se) << dist.name();
  // Variance converges slower; allow 10% relative error.
  EXPECT_NEAR(stats.variance(), dist.variance(), 0.10 * dist.variance())
      << dist.name();
}

/// Empirical CDF at a few probe points must match the analytic CDF.
void check_cdf(const Distribution& dist, int n = 200000) {
  Xoshiro256ss rng(0xbeefULL);
  const double probes[] = {0.5 * dist.mean(), dist.mean(), 2.0 * dist.mean()};
  int below[3] = {0, 0, 0};
  for (int i = 0; i < n; ++i) {
    const double x = dist.sample(rng);
    for (int j = 0; j < 3; ++j) {
      if (x <= probes[j]) ++below[j];
    }
  }
  for (int j = 0; j < 3; ++j) {
    const double expected = dist.cdf(probes[j]);
    EXPECT_NEAR(static_cast<double>(below[j]) / n, expected, 0.01)
        << dist.name() << " at probe " << probes[j];
  }
}

TEST(ExponentialTest, MomentsAndCdf) {
  const Exponential dist(0.25);
  EXPECT_DOUBLE_EQ(dist.mean(), 4.0);
  EXPECT_DOUBLE_EQ(dist.variance(), 16.0);
  check_moments(dist);
  check_cdf(dist);
}

TEST(ExponentialTest, FromMean) {
  const auto dist = Exponential::from_mean(100.0);
  EXPECT_DOUBLE_EQ(dist.mean(), 100.0);
  EXPECT_DOUBLE_EQ(dist.rate(), 0.01);
}

TEST(ExponentialTest, CdfBasics) {
  const Exponential dist(1.0);
  EXPECT_DOUBLE_EQ(dist.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.cdf(-1.0), 0.0);
  EXPECT_NEAR(dist.cdf(1.0), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(ExponentialTest, RejectsBadRate) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
  EXPECT_THROW(Exponential::from_mean(0.0), std::invalid_argument);
}

TEST(WeibullTest, ShapeOneIsExponential) {
  const Weibull weibull(1.0, 5.0);
  EXPECT_NEAR(weibull.mean(), 5.0, 1e-12);
  EXPECT_NEAR(weibull.variance(), 25.0, 1e-9);
}

TEST(WeibullTest, MomentsSubExponentialShape) {
  const auto dist = Weibull::from_mean(0.7, 50.0);
  EXPECT_NEAR(dist.mean(), 50.0, 1e-9);
  check_moments(dist);
  check_cdf(dist);
}

TEST(WeibullTest, MomentsSuperExponentialShape) {
  const auto dist = Weibull::from_mean(2.0, 10.0);
  EXPECT_NEAR(dist.mean(), 10.0, 1e-9);
  check_moments(dist);
}

TEST(WeibullTest, RejectsBadParameters) {
  EXPECT_THROW(Weibull(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Weibull(1.0, 0.0), std::invalid_argument);
}

TEST(LogNormalTest, Moments) {
  const auto dist = LogNormal::from_mean(0.5, 20.0);
  EXPECT_NEAR(dist.mean(), 20.0, 1e-9);
  check_moments(dist);
  check_cdf(dist);
}

TEST(LogNormalTest, RejectsBadSigma) {
  EXPECT_THROW(LogNormal(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(LogNormal(0.0, -1.0), std::invalid_argument);
}

TEST(UniformRealTest, MomentsAndCdf) {
  const UniformReal dist(2.0, 6.0);
  EXPECT_DOUBLE_EQ(dist.mean(), 4.0);
  EXPECT_NEAR(dist.variance(), 16.0 / 12.0, 1e-12);
  EXPECT_DOUBLE_EQ(dist.cdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.cdf(4.0), 0.5);
  EXPECT_DOUBLE_EQ(dist.cdf(7.0), 1.0);
  check_moments(dist, 100000);
}

TEST(UniformRealTest, RejectsBadRange) {
  EXPECT_THROW(UniformReal(5.0, 5.0), std::invalid_argument);
  EXPECT_THROW(UniformReal(-1.0, 3.0), std::invalid_argument);
}

TEST(DistributionTest, CloneIsIndependentAndEquivalent) {
  const auto dist = Weibull::from_mean(0.9, 30.0);
  const std::unique_ptr<Distribution> copy = dist.clone();
  EXPECT_EQ(copy->name(), dist.name());
  Xoshiro256ss a(1), b(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(dist.sample(a), copy->sample(b));
  }
}

TEST(StandardNormalTest, MomentsAreStandard) {
  Xoshiro256ss rng(0xabcULL);
  RunningStats stats;
  for (int i = 0; i < 400000; ++i) stats.add(sample_standard_normal(rng));
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0, 0.02);
}

}  // namespace
