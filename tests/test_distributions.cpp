#include "util/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace dckpt::util;

/// Draws `n` samples and checks mean/variance against the analytic moments
/// within a z-bound derived from the CLT.
void check_moments(const Distribution& dist, int n = 400000) {
  Xoshiro256ss rng(0xfeedULL);
  RunningStats stats;
  for (int i = 0; i < n; ++i) {
    const double x = dist.sample(rng);
    ASSERT_GT(x, 0.0) << dist.name();
    ASSERT_TRUE(std::isfinite(x)) << dist.name();
    stats.add(x);
  }
  const double se = std::sqrt(dist.variance() / n);
  EXPECT_NEAR(stats.mean(), dist.mean(), 6.0 * se) << dist.name();
  // Variance converges slower; allow 10% relative error.
  EXPECT_NEAR(stats.variance(), dist.variance(), 0.10 * dist.variance())
      << dist.name();
}

/// Empirical CDF at a few probe points must match the analytic CDF.
void check_cdf(const Distribution& dist, int n = 200000) {
  Xoshiro256ss rng(0xbeefULL);
  const double probes[] = {0.5 * dist.mean(), dist.mean(), 2.0 * dist.mean()};
  int below[3] = {0, 0, 0};
  for (int i = 0; i < n; ++i) {
    const double x = dist.sample(rng);
    for (int j = 0; j < 3; ++j) {
      if (x <= probes[j]) ++below[j];
    }
  }
  for (int j = 0; j < 3; ++j) {
    const double expected = dist.cdf(probes[j]);
    EXPECT_NEAR(static_cast<double>(below[j]) / n, expected, 0.01)
        << dist.name() << " at probe " << probes[j];
  }
}

TEST(ExponentialTest, MomentsAndCdf) {
  const Exponential dist(0.25);
  EXPECT_DOUBLE_EQ(dist.mean(), 4.0);
  EXPECT_DOUBLE_EQ(dist.variance(), 16.0);
  check_moments(dist);
  check_cdf(dist);
}

TEST(ExponentialTest, FromMean) {
  const auto dist = Exponential::from_mean(100.0);
  EXPECT_DOUBLE_EQ(dist.mean(), 100.0);
  EXPECT_DOUBLE_EQ(dist.rate(), 0.01);
}

TEST(ExponentialTest, CdfBasics) {
  const Exponential dist(1.0);
  EXPECT_DOUBLE_EQ(dist.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.cdf(-1.0), 0.0);
  EXPECT_NEAR(dist.cdf(1.0), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(ExponentialTest, RejectsBadRate) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
  EXPECT_THROW(Exponential::from_mean(0.0), std::invalid_argument);
}

TEST(WeibullTest, ShapeOneIsExponential) {
  const Weibull weibull(1.0, 5.0);
  EXPECT_NEAR(weibull.mean(), 5.0, 1e-12);
  EXPECT_NEAR(weibull.variance(), 25.0, 1e-9);
}

TEST(WeibullTest, MomentsSubExponentialShape) {
  const auto dist = Weibull::from_mean(0.7, 50.0);
  EXPECT_NEAR(dist.mean(), 50.0, 1e-9);
  check_moments(dist);
  check_cdf(dist);
}

TEST(WeibullTest, MomentsSuperExponentialShape) {
  const auto dist = Weibull::from_mean(2.0, 10.0);
  EXPECT_NEAR(dist.mean(), 10.0, 1e-9);
  check_moments(dist);
}

TEST(WeibullTest, RejectsBadParameters) {
  EXPECT_THROW(Weibull(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Weibull(1.0, 0.0), std::invalid_argument);
}

TEST(WeibullTest, FromMeanPreservesMeanAcrossEdgeShapes) {
  // from_mean solves scale = mean / Gamma(1 + 1/k). Shapes far from 1 push
  // Gamma(1 + 1/k) to extreme values (k = 0.2 -> Gamma(6) = 120, k = 0.1 ->
  // Gamma(11) = 3628800); the requested mean must survive the round trip.
  for (double shape : {0.1, 0.2, 0.5, 1.0, 2.0, 5.0}) {
    const auto dist = Weibull::from_mean(shape, 123.0);
    EXPECT_NEAR(dist.mean(), 123.0, 123.0 * 1e-12) << "shape=" << shape;
    EXPECT_GT(dist.scale(), 0.0) << "shape=" << shape;
    EXPECT_TRUE(std::isfinite(dist.variance())) << "shape=" << shape;
  }
}

TEST(WeibullTest, VerySmallShapeSamplesStayPositiveFinite) {
  // k = 0.2: (-ln u)^5 spans many orders of magnitude across the open unit
  // interval; every sample must stay strictly positive and finite (the
  // Distribution contract the simulator's injector relies on).
  const auto dist = Weibull::from_mean(0.2, 100.0);
  Xoshiro256ss rng(0x77);
  for (int i = 0; i < 20000; ++i) {
    const double x = dist.sample(rng);
    ASSERT_GT(x, 0.0);
    ASSERT_TRUE(std::isfinite(x));
  }
  // Heavy clustering signature: the median sits far below the mean.
  const double median = dist.scale() * std::pow(std::log(2.0), 1.0 / 0.2);
  EXPECT_LT(median, 0.1 * dist.mean());
}

TEST(WeibullTest, ShapeOneIsExactlyExponentialDistribution) {
  // k = 1 must reproduce Exponential(1/mean) as a distribution: identical
  // analytic moments and CDF, and the same inverse-CDF sample stream from
  // identical RNG state (both reduce to -mean * ln U, up to rounding in the
  // reciprocal rate -- hence DOUBLE_EQ, i.e. 4-ulp, not bitwise ==).
  const double mean = 24000.0;
  const auto weibull = Weibull::from_mean(1.0, mean);
  const auto exponential = Exponential::from_mean(mean);
  EXPECT_DOUBLE_EQ(weibull.mean(), exponential.mean());
  EXPECT_DOUBLE_EQ(weibull.variance(), exponential.variance());
  for (double x : {100.0, 5000.0, 24000.0, 100000.0}) {
    EXPECT_DOUBLE_EQ(weibull.cdf(x), exponential.cdf(x)) << "x=" << x;
  }
  Xoshiro256ss a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(weibull.sample(a), exponential.sample(b));
  }
}

TEST(WeibullTest, SuperExponentialShapeConcentrates) {
  // k > 1 regularizes arrivals: variance strictly below the exponential of
  // the same mean (CV^2 < 1).
  const auto dist = Weibull::from_mean(3.0, 10.0);
  EXPECT_NEAR(dist.mean(), 10.0, 1e-9);
  EXPECT_LT(dist.variance(), 100.0);
  check_moments(dist);
}

TEST(LogNormalTest, Moments) {
  const auto dist = LogNormal::from_mean(0.5, 20.0);
  EXPECT_NEAR(dist.mean(), 20.0, 1e-9);
  check_moments(dist);
  check_cdf(dist);
}

TEST(LogNormalTest, RejectsBadSigma) {
  EXPECT_THROW(LogNormal(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(LogNormal(0.0, -1.0), std::invalid_argument);
}

TEST(UniformRealTest, MomentsAndCdf) {
  const UniformReal dist(2.0, 6.0);
  EXPECT_DOUBLE_EQ(dist.mean(), 4.0);
  EXPECT_NEAR(dist.variance(), 16.0 / 12.0, 1e-12);
  EXPECT_DOUBLE_EQ(dist.cdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.cdf(4.0), 0.5);
  EXPECT_DOUBLE_EQ(dist.cdf(7.0), 1.0);
  check_moments(dist, 100000);
}

TEST(UniformRealTest, RejectsBadRange) {
  EXPECT_THROW(UniformReal(5.0, 5.0), std::invalid_argument);
  EXPECT_THROW(UniformReal(-1.0, 3.0), std::invalid_argument);
}

TEST(DistributionTest, CloneIsIndependentAndEquivalent) {
  const auto dist = Weibull::from_mean(0.9, 30.0);
  const std::unique_ptr<Distribution> copy = dist.clone();
  EXPECT_EQ(copy->name(), dist.name());
  Xoshiro256ss a(1), b(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(dist.sample(a), copy->sample(b));
  }
}

TEST(StandardNormalTest, MomentsAreStandard) {
  Xoshiro256ss rng(0xabcULL);
  RunningStats stats;
  for (int i = 0; i < 400000; ++i) stats.add(sample_standard_normal(rng));
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0, 0.02);
}

}  // namespace
