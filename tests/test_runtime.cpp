// End-to-end tests of the fault-tolerant runtime: injected failures must be
// fully masked -- the final application state is bit-identical to a
// failure-free execution.
#include <gtest/gtest.h>

#include <memory>

#include "runtime/runtime_api.hpp"

namespace {

using namespace dckpt::runtime;
using dckpt::ckpt::Topology;

RuntimeConfig small_config(Topology topology) {
  RuntimeConfig config;
  config.nodes = topology == Topology::Pairs ? 4 : 6;
  config.topology = topology;
  config.cells_per_node = 128;
  config.checkpoint_interval = 8;
  config.total_steps = 40;
  config.threads = 2;
  return config;
}

std::uint64_t reference_hash(const RuntimeConfig& config) {
  Coordinator reference(config, std::make_unique<HeatKernel>());
  const auto report = reference.run();
  EXPECT_FALSE(report.fatal);
  return report.final_hash;
}

TEST(RuntimeTest, FaultFreeRunIsDeterministic) {
  const auto config = small_config(Topology::Pairs);
  EXPECT_EQ(reference_hash(config), reference_hash(config));
}

TEST(RuntimeTest, FaultFreeReportAccounting) {
  const auto config = small_config(Topology::Pairs);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const auto report = coordinator.run();
  EXPECT_EQ(report.steps_executed, 40u);
  EXPECT_EQ(report.replayed_steps, 0u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.rollbacks, 0u);
  // Checkpoints at steps 8,16,24,32 (not at 40 = completion).
  EXPECT_EQ(report.checkpoints, 4u);
  // Pairs replicate one image per node per checkpoint.
  EXPECT_EQ(report.bytes_replicated,
            4u * config.nodes * config.cells_per_node * sizeof(double));
}

TEST(RuntimeTest, SingleFailureIsMaskedPairs) {
  const auto config = small_config(Topology::Pairs);
  const auto expected = reference_hash(config);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{21, 2}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.failures, 1u);
  EXPECT_EQ(report.rollbacks, 1u);
  // Rolled back from step 21 to the step-16 checkpoint.
  EXPECT_EQ(report.replayed_steps, 5u);
  EXPECT_EQ(report.final_hash, expected);
}

TEST(RuntimeTest, SingleFailureIsMaskedTriples) {
  const auto config = small_config(Topology::Triples);
  const auto expected = reference_hash(config);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{13, 4}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.final_hash, expected);
  EXPECT_EQ(report.replayed_steps, 5u);  // 13 -> 8
}

TEST(RuntimeTest, FailureBeforeFirstCheckpointRestartsFromInitial) {
  const auto config = small_config(Topology::Pairs);
  const auto expected = reference_hash(config);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{5, 0}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal);
  EXPECT_EQ(report.replayed_steps, 5u);  // back to step 0
  EXPECT_EQ(report.final_hash, expected);
}

TEST(RuntimeTest, MultipleSeparatedFailuresAreMasked) {
  const auto config = small_config(Topology::Pairs);
  const auto expected = reference_hash(config);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{10, 1}, {20, 3}, {33, 0}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal);
  EXPECT_EQ(report.failures, 3u);
  EXPECT_EQ(report.rollbacks, 3u);
  EXPECT_EQ(report.final_hash, expected);
}

TEST(RuntimeTest, RepeatedFailureOfSameNodeIsMasked) {
  const auto config = small_config(Topology::Pairs);
  const auto expected = reference_hash(config);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{9, 2}, {17, 2}, {25, 2}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal);
  EXPECT_EQ(report.final_hash, expected);
}

TEST(RuntimeTest, PairLosingBothMembersAtOnceIsFatal) {
  const auto config = small_config(Topology::Pairs);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{12, 0}, {12, 1}};
  const auto report = coordinator.run(failures);
  EXPECT_TRUE(report.fatal);
  EXPECT_NE(report.fatal_reason.find("no surviving replica"),
            std::string::npos);
}

TEST(RuntimeTest, TripleSurvivesTwoSequentialFailures) {
  // Two failures in the same triple, with re-replication completing between
  // them (different steps): both are masked -- the paper's headline triple
  // property.
  const auto config = small_config(Topology::Triples);
  const auto expected = reference_hash(config);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{12, 0}, {13, 1}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.failures, 2u);
  EXPECT_EQ(report.final_hash, expected);
}

TEST(RuntimeTest, TripleTwoSimultaneousFailuresAreFatal) {
  // Refinement over the paper's first-order risk model: in the rotation
  // topology the two victims of a *simultaneous* double failure are exactly
  // the two holders of the survivor's image, so the survivor cannot roll
  // back -- the set is lost with only two hits. The model's
  // "three successive failures" claim assumes re-replication completes
  // between hits (see DESIGN.md).
  const auto config = small_config(Topology::Triples);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{12, 0}, {12, 1}};
  const auto report = coordinator.run(failures);
  EXPECT_TRUE(report.fatal);
  EXPECT_NE(report.fatal_reason.find("no surviving replica"),
            std::string::npos);
}

TEST(RuntimeTest, TripleLosingWholeGroupIsFatal) {
  const auto config = small_config(Topology::Triples);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{12, 3}, {12, 4}, {12, 5}};
  const auto report = coordinator.run(failures);
  EXPECT_TRUE(report.fatal);
}

TEST(RuntimeTest, CounterKernelClosedFormSurvivesFailures) {
  auto config = small_config(Topology::Pairs);
  config.total_steps = 30;
  Coordinator coordinator(config, std::make_unique<CounterKernel>());
  const FailureInjection failures[] = {{11, 1}, {23, 2}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal);
  const auto state = coordinator.global_state();
  for (std::size_t i = 0; i < state.size(); ++i) {
    EXPECT_DOUBLE_EQ(state[i], static_cast<double>(i) + 30.0) << i;
  }
}

TEST(RuntimeTest, WaveKernelFailuresAreMasked) {
  // The wave kernel packs two time levels per block; a failure must restore
  // both consistently or the leapfrog scheme falls apart visibly.
  auto config = small_config(Topology::Pairs);
  config.cells_per_node = 256;  // even: two levels of 128 physical cells
  Coordinator reference(config, std::make_unique<WaveKernel>());
  const auto expected = reference.run();
  ASSERT_FALSE(expected.fatal);

  Coordinator coordinator(config, std::make_unique<WaveKernel>());
  const FailureInjection failures[] = {{19, 1}, {30, 2}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.failures, 2u);
  EXPECT_EQ(report.final_hash, expected.final_hash);
}

TEST(RuntimeTest, ResultIndependentOfThreadCount) {
  auto config = small_config(Topology::Pairs);
  config.threads = 1;
  const auto h1 = reference_hash(config);
  config.threads = 4;
  const auto h4 = reference_hash(config);
  EXPECT_EQ(h1, h4);
}

TEST(StagedRuntimeTest, FaultFreeStagingMatchesBlockingResult) {
  auto config = small_config(Topology::Pairs);
  const auto blocking = reference_hash(config);
  config.staging_steps = 4;
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const auto report = coordinator.run();
  ASSERT_FALSE(report.fatal);
  EXPECT_EQ(report.final_hash, blocking);
  EXPECT_EQ(report.checkpoints, 4u);
}

TEST(StagedRuntimeTest, FailureDuringStagingRollsBackFurther) {
  // interval 8, staging 4: snapshot taken at 16 commits at 20. A failure at
  // step 18 must fall back to the previous committed set (snapshot of 8),
  // re-executing 10 steps -- the blocking run would only replay 2.
  auto config = small_config(Topology::Pairs);
  config.staging_steps = 4;
  const auto expected = reference_hash(config);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{18, 1}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.replayed_steps, 10u);
  EXPECT_EQ(report.final_hash, expected);
}

TEST(StagedRuntimeTest, FailureAfterCommitRollsBackToSnapshotStep) {
  // Failure at 21: snapshot-of-16 committed at 20, so only 5 steps replay.
  auto config = small_config(Topology::Pairs);
  config.staging_steps = 4;
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{21, 0}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal);
  EXPECT_EQ(report.replayed_steps, 5u);
}

TEST(StagedRuntimeTest, FailureBeforeFirstCommitRestartsFromInitial) {
  auto config = small_config(Topology::Pairs);
  config.staging_steps = 4;
  const auto expected = reference_hash(config);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{10, 2}};  // staging of step 8 live
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal);
  EXPECT_EQ(report.replayed_steps, 10u);  // all the way back to step 0
  EXPECT_EQ(report.final_hash, expected);
}

TEST(StagedRuntimeTest, StagingEqualToIntervalIsBackToBack) {
  auto config = small_config(Topology::Pairs);
  config.staging_steps = config.checkpoint_interval;
  const auto expected = reference_hash(config);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{27, 3}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal);
  // Snapshot-of-16 commits at 24; failure at 27 replays 11 steps.
  EXPECT_EQ(report.replayed_steps, 11u);
  EXPECT_EQ(report.final_hash, expected);
}

TEST(StagedRuntimeTest, TriplesMaskFailuresWithStaging) {
  auto config = small_config(Topology::Triples);
  config.staging_steps = 3;
  const auto expected = reference_hash(config);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{9, 0}, {26, 5}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.final_hash, expected);
}

TEST(StagedRuntimeTest, StagingLongerThanIntervalRejected) {
  auto config = small_config(Topology::Pairs);
  config.staging_steps = config.checkpoint_interval + 1;
  EXPECT_THROW(Coordinator(config, std::make_unique<HeatKernel>()),
               std::invalid_argument);
}

TEST(RuntimeTest, CowCopiesAreCounted) {
  const auto config = small_config(Topology::Pairs);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const auto report = coordinator.run();
  // Snapshots stay alive in buddy stores while the app keeps writing:
  // COW must have duplicated pages.
  EXPECT_GT(report.cow_copies, 0u);
}

TEST(RuntimeTest, ConfigValidation) {
  RuntimeConfig config = small_config(Topology::Pairs);
  config.nodes = 5;
  EXPECT_THROW(Coordinator(config, std::make_unique<HeatKernel>()),
               std::invalid_argument);
  config = small_config(Topology::Triples);
  config.nodes = 4;
  EXPECT_THROW(Coordinator(config, std::make_unique<HeatKernel>()),
               std::invalid_argument);
  config = small_config(Topology::Pairs);
  config.checkpoint_interval = 0;
  EXPECT_THROW(Coordinator(config, std::make_unique<HeatKernel>()),
               std::invalid_argument);
  config = small_config(Topology::Pairs);
  EXPECT_THROW(Coordinator(config, nullptr), std::invalid_argument);
}

TEST(RuntimeTest, InjectionNodeOutOfRangeThrows) {
  const auto config = small_config(Topology::Pairs);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{3, 99}};
  EXPECT_THROW(coordinator.run(failures), std::invalid_argument);
}

// Re-replication delay: the runtime realization of the model's risk window.
// small_config commits at steps 8/16/24/32 (staging 0), so a failure at
// step 9 rolls back to step 8 and the refill lands `delay` executed steps
// later.

TEST(RiskWindowTest, SecondHitInsideWindowIsFatal) {
  auto config = small_config(Topology::Pairs);
  config.rereplication_delay_steps = 3;
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  // Buddy dies 2 executed steps after the rollback, refill needs 3.
  const FailureInjection failures[] = {{9, 0}, {10, 1}};
  const auto report = coordinator.run(failures);
  EXPECT_TRUE(report.fatal);
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.fatal_node, 0u);
  EXPECT_EQ(report.fatal_step, 10u);
  EXPECT_NE(report.fatal_reason.find("no surviving replica of node 0"),
            std::string::npos);
  // Fatal runs continue in degraded mode instead of aborting: the full 40
  // steps complete (plus 1 + 2 replayed), the 2-tick window before the
  // second hit is joined by 3 more ticks until the re-derived refill's
  // empty delivery, and the blank-restarted pair runs degraded until the
  // step-16 commit re-establishes every replica.
  EXPECT_EQ(report.steps_executed, 43u);
  EXPECT_EQ(report.replayed_steps, 3u);
  EXPECT_EQ(report.risk_steps, 5u);
  EXPECT_EQ(report.degraded_steps, 8u);
  EXPECT_EQ(report.rereplications, 0u);
}

TEST(RiskWindowTest, SecondHitAfterRefillIsMasked) {
  auto config = small_config(Topology::Pairs);
  config.rereplication_delay_steps = 3;
  const auto expected = reference_hash(small_config(Topology::Pairs));
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  // Buddy dies 4 executed steps after the rollback: refill landed at 11.
  const FailureInjection failures[] = {{9, 0}, {12, 1}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.final_hash, expected);
  EXPECT_EQ(report.rereplications, 2u);  // one refill per loss
  EXPECT_EQ(report.risk_steps, 6u);      // two 3-step windows
  EXPECT_EQ(report.recoveries, 2u);      // each victim restored from a peer
}

TEST(RiskWindowTest, CommitClosesTheWindow) {
  auto config = small_config(Topology::Pairs);
  // Refill slower than the checkpoint interval: the step-16 commit
  // re-creates every replica and must subsume the pending refill.
  config.rereplication_delay_steps = 20;
  const auto expected = reference_hash(small_config(Topology::Pairs));
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{9, 0}, {18, 1}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.final_hash, expected);
  EXPECT_EQ(report.rereplications, 0u);  // never completed, always subsumed
  // Window open for the 8 executed steps from the rollback to the commit,
  // then again from the second rollback (at 16) to the step-24 commit.
  EXPECT_EQ(report.risk_steps, 16u);
}

TEST(RiskWindowTest, ZeroDelayRefillsImmediately) {
  auto config = small_config(Topology::Pairs);
  const auto expected = reference_hash(config);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  // The same back-to-back buddy hits that are fatal under a delay.
  const FailureInjection failures[] = {{9, 0}, {10, 1}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.final_hash, expected);
  EXPECT_EQ(report.risk_steps, 0u);
  EXPECT_EQ(report.rereplications, 2u);
}

TEST(RiskWindowTest, TriplesLoseTheThirdImageInsideTheWindow) {
  auto config = small_config(Topology::Triples);
  config.rereplication_delay_steps = 3;
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  // Nodes 0 and 1 die 2 steps apart: node 2's image lived exactly on their
  // two stores, and the refill of store 0 is still pending.
  const FailureInjection failures[] = {{9, 0}, {10, 1}};
  const auto report = coordinator.run(failures);
  EXPECT_TRUE(report.fatal);
  EXPECT_NE(report.fatal_reason.find("no surviving replica of node 2"),
            std::string::npos);
}

TEST(RiskWindowTest, TriplesSurviveTheSameHitsOnceRefilled) {
  auto config = small_config(Topology::Triples);
  config.rereplication_delay_steps = 3;
  const auto expected = reference_hash(small_config(Topology::Triples));
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{9, 0}, {13, 1}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.final_hash, expected);
}

// Corruption-tolerant recovery: silent replica corruption must be detected
// at restore time; the ladder fails over to the next intact image, and only
// a node with *no* intact image anywhere degrades the run -- it never
// aborts it.

TEST(CorruptionTest, TriplesFailOverToSecondaryWhenPreferredCorrupt) {
  const auto config = small_config(Topology::Triples);
  const auto expected = reference_hash(config);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  // Node 0's preferred replica (on node 1) is silently corrupted after the
  // step-8 commit; node 0 then dies. The rollback must detect the damage
  // and restore node 0 from its secondary copy on node 2.
  const FailureInjection failures[] = {
      {10, 1, InjectionKind::CorruptReplica, 0},
      {12, 0},
  };
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.failovers, 1u);
  EXPECT_EQ(report.corrupt_images_detected, 1u);
  EXPECT_EQ(report.transfer_retries, 0u);
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(report.final_hash, expected);
}

TEST(CorruptionTest, PairsOnlyReplicaCorruptedIsDegradedNotThrown) {
  const auto config = small_config(Topology::Pairs);
  const auto expected = reference_hash(config);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  // Pairs keep one remote replica. Corrupt it, then kill the owner: the
  // ladder is exhausted, the run enters degraded mode (typed fatal fields)
  // and still completes every step without throwing.
  const FailureInjection failures[] = {
      {10, 1, InjectionKind::CorruptReplica, 0},
      {12, 0},
  };
  const auto report = coordinator.run(failures);
  EXPECT_TRUE(report.fatal);
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.fatal_node, 0u);
  EXPECT_EQ(report.fatal_step, 12u);
  EXPECT_NE(report.fatal_reason.find("no surviving replica of node 0"),
            std::string::npos);
  // The rollback examines the corrupt ladder rung; the inline refill of
  // store 0 scans it again looking for a clean source of node 0's image.
  EXPECT_EQ(report.corrupt_images_detected, 2u);
  // 40 steps plus the 4 replayed from the step-8 commit, all executed.
  EXPECT_EQ(report.steps_executed, 44u);
  // Blank-restarted node 0 runs degraded until the step-16 commit.
  EXPECT_EQ(report.degraded_steps, 8u);
  EXPECT_NE(report.final_hash, expected);
}

TEST(CorruptionTest, TornRefillDeliveryIsRetriedWithBackoff) {
  auto config = small_config(Topology::Pairs);
  config.rereplication_delay_steps = 3;
  config.transfer_retry = {/*max_attempts=*/3, /*base_delay_steps=*/1};
  const auto expected = reference_hash(small_config(Topology::Pairs));
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  // The refill triggered by the step-9 loss arrives torn; the engine must
  // detect the tear, retry one backoff step later, and succeed.
  const FailureInjection failures[] = {
      {9, 0, InjectionKind::TornTransfer, 0},
      {9, 0},
  };
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.transfer_retries, 1u);
  EXPECT_EQ(report.corrupt_images_detected, 1u);
  EXPECT_EQ(report.rereplications, 1u);
  // 3 delay ticks plus 1 backoff tick with the window open.
  EXPECT_EQ(report.risk_steps, 4u);
  EXPECT_EQ(report.final_hash, expected);
}

TEST(CorruptionTest, RefillRetriesExhaustedKeepsWindowOpenUntilCommit) {
  auto config = small_config(Topology::Pairs);
  config.rereplication_delay_steps = 2;
  config.transfer_retry = {/*max_attempts=*/2, /*base_delay_steps=*/1};
  const auto expected = reference_hash(small_config(Topology::Pairs));
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  // Every delivery attempt for node 0's refill fails outright: the refill
  // is abandoned and the risk window stays open until the next commit
  // re-creates the replicas. Nothing else dies, so the run is still exact.
  const FailureInjection failures[] = {
      {9, 0, InjectionKind::FailTransfer, 0},
      {9, 0, InjectionKind::FailTransfer, 0},
      {9, 0},
  };
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.transfer_retries, 1u);  // re-issues only, not attempts
  EXPECT_EQ(report.rereplications, 0u);    // never delivered
  // Window open for the 8 executed steps from the rollback at 9 to the
  // step-16 commit (2 delay ticks, 1 backoff tick, then abandoned).
  EXPECT_EQ(report.risk_steps, 8u);
  EXPECT_EQ(report.final_hash, expected);
}

// --- Fault prediction: alarms and proactive checkpoints -------------------

TEST(FaultPredictionTest, AlarmPredictsLossAndShortensReplay) {
  const auto config = small_config(Topology::Pairs);
  const auto expected = reference_hash(config);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  // The alarm lands one step ahead of the kill: the proactive checkpoint
  // at step 20 commits, so the rollback replays 1 step instead of the 5
  // since the step-16 boundary.
  const FailureInjection failures[] = {
      {20, 2, InjectionKind::Alarm, 0, 1},
      {21, 2},
  };
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.alarms_raised, 1u);
  EXPECT_EQ(report.proactive_ckpts, 1u);
  EXPECT_EQ(report.checkpoints, 5u);  // 4 periodic + 1 proactive
  EXPECT_EQ(report.true_predictions, 1u);
  EXPECT_EQ(report.missed_failures, 0u);
  EXPECT_EQ(report.replayed_steps, 1u);
  EXPECT_EQ(report.final_hash, expected);
}

TEST(FaultPredictionTest, FalseAlarmCommitsAndStaysExact) {
  const auto config = small_config(Topology::Pairs);
  const auto expected = reference_hash(config);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  // No loss follows: the alarm costs one extra checkpoint and nothing else.
  const FailureInjection failures[] = {{13, 1, InjectionKind::Alarm, 0, 0}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.alarms_raised, 1u);
  EXPECT_EQ(report.proactive_ckpts, 1u);
  EXPECT_EQ(report.true_predictions, 0u);
  EXPECT_EQ(report.missed_failures, 0u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.replayed_steps, 0u);
  EXPECT_EQ(report.final_hash, expected);
}

TEST(FaultPredictionTest, AlarmAtStepZeroIsSkipped) {
  const auto config = small_config(Topology::Pairs);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  // The implicit initial checkpoint already captures step 0's state.
  const FailureInjection failures[] = {{0, 1, InjectionKind::Alarm, 0, 0}};
  const auto report = coordinator.run(failures);
  EXPECT_EQ(report.alarms_raised, 1u);
  EXPECT_EQ(report.proactive_ckpts, 0u);
  EXPECT_EQ(report.checkpoints, 4u);
}

TEST(FaultPredictionTest, AlarmRightAfterBoundaryCommitIsSkipped) {
  const auto config = small_config(Topology::Pairs);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  // With an unstaged exchange the step-8 boundary commits as step 8 is
  // reached, so an alarm firing at step 8 has nothing new to save.
  const FailureInjection failures[] = {{8, 1, InjectionKind::Alarm, 0, 0}};
  const auto report = coordinator.run(failures);
  EXPECT_EQ(report.alarms_raised, 1u);
  EXPECT_EQ(report.proactive_ckpts, 0u);
  EXPECT_EQ(report.checkpoints, 4u);
}

TEST(FaultPredictionTest, UnannouncedLossScoresMissed) {
  const auto config = small_config(Topology::Pairs);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  const FailureInjection failures[] = {{21, 2}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.alarms_raised, 0u);
  EXPECT_EQ(report.true_predictions, 0u);
  EXPECT_EQ(report.missed_failures, 1u);
}

TEST(FaultPredictionTest, AlarmOutsideItsWindowScoresMissed) {
  const auto config = small_config(Topology::Pairs);
  const auto expected = reference_hash(config);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  // The alarm's window [10, 12] closes before the step-21 loss: the
  // proactive checkpoint still happens (and is later superseded by the
  // step-16 boundary), but the scoreboard records a miss.
  const FailureInjection failures[] = {
      {10, 2, InjectionKind::Alarm, 0, 2},
      {21, 2},
  };
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.alarms_raised, 1u);
  EXPECT_EQ(report.proactive_ckpts, 1u);
  EXPECT_EQ(report.true_predictions, 0u);
  EXPECT_EQ(report.missed_failures, 1u);
  EXPECT_EQ(report.replayed_steps, 5u);  // back to the step-16 boundary
  EXPECT_EQ(report.final_hash, expected);
}

TEST(FaultPredictionTest, ProactiveCommitSupersedesStagedExchange) {
  auto config = small_config(Topology::Pairs);
  config.staging_steps = 4;
  const auto expected = reference_hash(config);
  Coordinator coordinator(config, std::make_unique<HeatKernel>());
  // The step-16 boundary's staged exchange is in flight (commit due at 20)
  // when the alarm fires at 18: the proactive commit captures the strictly
  // newer step-18 state, discards the staged set, and the kill at 19 rolls
  // back just one step.
  const FailureInjection failures[] = {
      {18, 2, InjectionKind::Alarm, 0, 1},
      {19, 2},
  };
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.alarms_raised, 1u);
  EXPECT_EQ(report.proactive_ckpts, 1u);
  EXPECT_EQ(report.true_predictions, 1u);
  EXPECT_EQ(report.replayed_steps, 1u);
  EXPECT_EQ(report.final_hash, expected);
}

}  // namespace
