// Unit tests for the fault-prediction waste model (model/predictor.hpp):
// spec validation, reduction to the fail-stop model, the handled-recall
// window discount, factor composition, monotonicity in recall and precision,
// saturation, and the 1/sqrt(1 - r_t) stretch of the numeric period optimum.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "model/model_api.hpp"

namespace {

using namespace dckpt;
using model::Parameters;
using model::PredictorSpec;
using model::Protocol;

Parameters pred_params(double mtbf = 3600.0) {
  return model::base_scenario().at_phi_ratio(0.25).with_mtbf(mtbf);
}

TEST(PredictorSpecTest, ValidateAcceptsReasonableSpecs) {
  EXPECT_NO_THROW((PredictorSpec{0.8, 0.5, 300.0, 10.0}.validate()));
  EXPECT_NO_THROW((PredictorSpec{1.0, 0.0, 0.0, 0.0}.validate()));
  // Perfect just-in-time predictor.
  EXPECT_NO_THROW((PredictorSpec{1.0, 1.0, 0.0, 5.0}.validate()));
}

TEST(PredictorSpecTest, ValidateRejectsBadSpecs) {
  EXPECT_THROW((PredictorSpec{0.8, -0.1, 0.0, 0.0}.validate()),
               std::invalid_argument);
  EXPECT_THROW((PredictorSpec{0.8, 1.1, 0.0, 0.0}.validate()),
               std::invalid_argument);
  EXPECT_THROW((PredictorSpec{-0.2, 0.5, 0.0, 0.0}.validate()),
               std::invalid_argument);
  EXPECT_THROW((PredictorSpec{1.2, 0.5, 0.0, 0.0}.validate()),
               std::invalid_argument);
  // Recall without precision: the false-alarm rate r(1-p)/p diverges.
  EXPECT_THROW((PredictorSpec{0.0, 0.5, 0.0, 0.0}.validate()),
               std::invalid_argument);
  EXPECT_THROW((PredictorSpec{0.8, 0.5, -1.0, 0.0}.validate()),
               std::invalid_argument);
  EXPECT_THROW((PredictorSpec{0.8, 0.5, 0.0, -1.0}.validate()),
               std::invalid_argument);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((PredictorSpec{0.8, 0.5, inf, 0.0}.validate()),
               std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((PredictorSpec{nan, 0.5, 0.0, 0.0}.validate()),
               std::invalid_argument);
}

TEST(PredictorModelTest, EffectiveRecallDiscountsShortWindows) {
  // Just-in-time limit (w == 0): every predicted failure is handled.
  EXPECT_DOUBLE_EQ(model::effective_recall({0.8, 0.6, 0.0, 10.0}), 0.6);
  // Wide window: lead ~ U(0, w), only leads >= C_p save the work.
  EXPECT_DOUBLE_EQ(model::effective_recall({0.8, 0.6, 100.0, 25.0}),
                   0.6 * 0.75);
  // Window narrower than the proactive cost: nothing is handled in time.
  EXPECT_DOUBLE_EQ(model::effective_recall({0.8, 0.6, 5.0, 25.0}), 0.0);
}

TEST(PredictorModelTest, ReducesToFailStopWasteWhenDisabled) {
  const auto params = pred_params();
  const PredictorSpec off{0.7, 0.0, 60.0, 10.0};
  for (const Protocol protocol : model::kAllProtocols) {
    const double period =
        model::optimal_period_closed_form(protocol, params).period;
    EXPECT_DOUBLE_EQ(
        model::waste_with_predictor(protocol, params, period, off),
        model::waste(protocol, params, period))
        << model::protocol_name(protocol);
  }
}

TEST(PredictorModelTest, FactorsComposeAsDocumented) {
  // Check the closed form literally: the fail-stop factor at the effective
  // MTBF M/(1 - r_t), times the alarm-cost and handled-loss factors.
  const auto params = pred_params();
  const Protocol protocol = Protocol::DoubleNbl;
  const PredictorSpec spec{0.7, 0.6, 120.0, 20.0};
  const double period = 150.0;
  const double r_t = model::effective_recall(spec);
  const double base = model::waste(
      protocol, params.with_mtbf(params.mtbf / (1.0 - r_t)), period);
  const double lambda = 1.0 / params.mtbf;
  const double alarms =
      lambda * (spec.recall / spec.precision) * spec.proactive_cost;
  const double handled =
      lambda * r_t *
      (params.downtime + model::sdc_recovery_cost(protocol, params) +
       (spec.window - spec.proactive_cost) / 2.0);
  const double expected = 1.0 - (1.0 - base) * (1.0 - alarms) * (1.0 - handled);
  EXPECT_NEAR(model::waste_with_predictor(protocol, params, period, spec),
              expected, 1e-12);
}

TEST(PredictorModelTest, GoodPredictorReducesWasteAtLongPeriods) {
  // At periods past the fail-stop optimum, handling most failures for a
  // cheap proactive cost must beat the no-predictor baseline.
  const auto params = pred_params();
  const Protocol protocol = Protocol::DoubleNbl;
  const PredictorSpec spec{0.95, 0.9, 0.0, 1.0};  // near-perfect, cheap
  const double period =
      2.0 * model::optimal_period_closed_form(protocol, params).period;
  EXPECT_LT(model::waste_with_predictor(protocol, params, period, spec),
            model::waste(protocol, params, period));
}

TEST(PredictorModelTest, MonotoneInPrecision) {
  // Lower precision means more false alarms at the same recall: waste can
  // only grow as p falls.
  const auto params = pred_params();
  const double period = 150.0;
  double previous = 0.0;
  for (const double precision : {1.0, 0.8, 0.5, 0.2}) {
    const double w = model::waste_with_predictor(
        Protocol::DoubleNbl, params, period, {precision, 0.5, 0.0, 10.0});
    EXPECT_GE(w, previous - 1e-15) << "precision " << precision;
    previous = w;
  }
}

TEST(PredictorModelTest, SaturatesAtOne) {
  const auto params = pred_params(600.0);
  // Proactive checkpoints longer than the mean time between alarms: the
  // alarm factor alone exceeds the budget, so the model clamps.
  const double w = model::waste_with_predictor(
      Protocol::DoubleNbl, params, 150.0, {0.1, 1.0, 0.0, 300.0});
  EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(PredictorModelTest, OptimalPeriodBeatsNeighboringPeriods) {
  const auto params = pred_params();
  const PredictorSpec spec{0.8, 0.6, 0.0, 5.0};
  for (const Protocol protocol :
       {Protocol::DoubleNbl, Protocol::DoubleBof, Protocol::Triple}) {
    const auto opt =
        model::optimal_period_with_predictor(protocol, params, spec);
    ASSERT_TRUE(opt.feasible) << model::protocol_name(protocol);
    const double at_opt =
        model::waste_with_predictor(protocol, params, opt.period, spec);
    EXPECT_NEAR(at_opt, opt.waste, 1e-9);
    for (const double factor : {0.8, 1.25}) {
      const double neighbor = opt.period * factor;
      if (neighbor < model::min_period(protocol, params)) continue;
      EXPECT_LE(at_opt, model::waste_with_predictor(protocol, params,
                                                    neighbor, spec) +
                            1e-12)
          << model::protocol_name(protocol) << " factor " << factor;
    }
  }
}

TEST(PredictorModelTest, OptimumStretchesLikeInverseSqrtSurvivors) {
  // The papers' headline closed form: handled failures stop paying
  // rollbacks, so T_opt grows like T_opt(0) / sqrt(1 - r_t). The numeric
  // optimum must track that scaling within a loose band (the alarm and
  // handled-loss factors perturb it slightly).
  const auto params = pred_params();
  const Protocol protocol = Protocol::DoubleNbl;
  const PredictorSpec spec{1.0, 0.75, 0.0, 0.0};  // pure-recall predictor
  const auto base = model::optimal_period_closed_form(protocol, params);
  const auto pred =
      model::optimal_period_with_predictor(protocol, params, spec);
  ASSERT_TRUE(base.feasible && pred.feasible);
  const double stretch = pred.period / base.period;
  const double ideal = 1.0 / std::sqrt(1.0 - model::effective_recall(spec));
  EXPECT_GT(stretch, 1.05);  // strictly longer than fail-stop
  EXPECT_NEAR(stretch, ideal, 0.35 * ideal);
}

}  // namespace
