// Chaos campaign engine tests: schedule grammar, shadow-oracle
// classification, the scripted danger cases, randomized campaigns
// (the ISSUE's 200-run zero-violation acceptance bar), command-line
// reproducibility, and thread-count-invariant JSONL export.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "chaos/chaos_api.hpp"
#include "proptest.hpp"

namespace {

using namespace dckpt;
using dckpt::ckpt::Topology;

chaos::ChaosCampaignConfig small_campaign(Topology topology) {
  chaos::ChaosCampaignConfig config;
  config.runtime.topology = topology;
  config.runtime.nodes = topology == Topology::Pairs ? 8 : 9;
  config.runtime.cells_per_node = 48;
  config.runtime.checkpoint_interval = 12;
  config.runtime.total_steps = 96;
  config.runtime.staging_steps = 4;
  // The refill clock also ticks during replay, so a second hit can only
  // land inside the window when the delay exceeds the replay distance
  // (staging + 2 here). 8 keeps the scripted risk-window cases in-window.
  config.runtime.rereplication_delay_steps = 8;
  config.random_runs = 0;
  config.threads = 2;
  return config;
}

// ----------------------------------------------------------- grammar

TEST(ChaosSchedule, SpecRoundTrips) {
  const auto schedule = chaos::ChaosSchedule::parse("25:0,26:1,90:7");
  EXPECT_EQ(schedule.failures.size(), 3u);
  EXPECT_EQ(schedule.failures[1].step, 26u);
  EXPECT_EQ(schedule.failures[1].node, 1u);
  EXPECT_EQ(schedule.spec(), "25:0,26:1,90:7");
  EXPECT_EQ(chaos::ChaosSchedule::parse(schedule.spec()).spec(),
            schedule.spec());
}

TEST(ChaosSchedule, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(chaos::ChaosSchedule::parse(""), std::invalid_argument);
  EXPECT_THROW(chaos::ChaosSchedule::parse("banana"), std::invalid_argument);
  EXPECT_THROW(chaos::ChaosSchedule::parse("25"), std::invalid_argument);
  EXPECT_THROW(chaos::ChaosSchedule::parse("25:"), std::invalid_argument);
  EXPECT_THROW(chaos::ChaosSchedule::parse(":1"), std::invalid_argument);
  EXPECT_THROW(chaos::ChaosSchedule::parse("25:1,"), std::invalid_argument);
  EXPECT_THROW(chaos::ChaosSchedule::parse("25:1,,30:2"),
               std::invalid_argument);
  EXPECT_THROW(chaos::ChaosSchedule::parse("-3:1"), std::invalid_argument);
  EXPECT_THROW(chaos::ChaosSchedule::parse("2.5:1"), std::invalid_argument);
  EXPECT_THROW(chaos::ChaosSchedule::parse("25:1 "), std::invalid_argument);
}

TEST(ChaosSchedule, CorruptionGrammarRoundTrips) {
  using runtime::InjectionKind;
  const auto schedule =
      chaos::ChaosSchedule::parse("10:corrupt:1:0,12:torn:3,14:failxfer:2,20:5");
  ASSERT_EQ(schedule.failures.size(), 4u);
  EXPECT_EQ(schedule.failures[0].kind, InjectionKind::CorruptReplica);
  EXPECT_EQ(schedule.failures[0].node, 1u);   // holder
  EXPECT_EQ(schedule.failures[0].owner, 0u);
  EXPECT_EQ(schedule.failures[1].kind, InjectionKind::TornTransfer);
  EXPECT_EQ(schedule.failures[1].node, 3u);
  EXPECT_EQ(schedule.failures[2].kind, InjectionKind::FailTransfer);
  EXPECT_EQ(schedule.failures[3].kind, InjectionKind::NodeLoss);
  EXPECT_EQ(schedule.spec(), "10:corrupt:1:0,12:torn:3,14:failxfer:2,20:5");
  EXPECT_EQ(chaos::ChaosSchedule::parse(schedule.spec()).spec(),
            schedule.spec());
}

TEST(ChaosSchedule, CorruptionGrammarRejectsMalformedEntries) {
  EXPECT_THROW(chaos::ChaosSchedule::parse("10:corrupt:1"),
               std::invalid_argument);  // missing owner
  EXPECT_THROW(chaos::ChaosSchedule::parse("10:corrupt:x:0"),
               std::invalid_argument);
  EXPECT_THROW(chaos::ChaosSchedule::parse("10:torn"),
               std::invalid_argument);  // missing node
  EXPECT_THROW(chaos::ChaosSchedule::parse("10:torn:1:2"),
               std::invalid_argument);  // trailing field
  EXPECT_THROW(chaos::ChaosSchedule::parse("10:banana:1"),
               std::invalid_argument);  // unknown kind
  EXPECT_THROW(chaos::ChaosSchedule::parse("10:failxfer:"),
               std::invalid_argument);
}

TEST(ChaosSchedule, AlarmGrammarRoundTrips) {
  using runtime::InjectionKind;
  const auto schedule =
      chaos::ChaosSchedule::parse("20:alarm:2,24:alarm:1:3,30:0");
  ASSERT_EQ(schedule.failures.size(), 3u);
  EXPECT_EQ(schedule.failures[0].kind, InjectionKind::Alarm);
  EXPECT_EQ(schedule.failures[0].node, 2u);
  EXPECT_EQ(schedule.failures[0].window, 0u);  // 3-field = same-step
  EXPECT_EQ(schedule.failures[1].kind, InjectionKind::Alarm);
  EXPECT_EQ(schedule.failures[1].node, 1u);
  EXPECT_EQ(schedule.failures[1].window, 3u);
  EXPECT_EQ(schedule.failures[2].kind, InjectionKind::NodeLoss);
  EXPECT_EQ(schedule.spec(), "20:alarm:2,24:alarm:1:3,30:0");
  EXPECT_EQ(chaos::ChaosSchedule::parse(schedule.spec()).spec(),
            schedule.spec());
}

TEST(ChaosSchedule, AlarmGrammarRejectsMalformedEntries) {
  EXPECT_THROW(chaos::ChaosSchedule::parse("10:alarm"),
               std::invalid_argument);  // missing node
  EXPECT_THROW(chaos::ChaosSchedule::parse("10:alarm:x"),
               std::invalid_argument);
  EXPECT_THROW(chaos::ChaosSchedule::parse("10:alarm:1:x"),
               std::invalid_argument);  // non-numeric window
  EXPECT_THROW(chaos::ChaosSchedule::parse("10:alarm:1:2:3"),
               std::invalid_argument);  // trailing field
  EXPECT_THROW(chaos::ChaosSchedule::parse("10:alarm:"),
               std::invalid_argument);
}

TEST(ChaosOracle, AlarmScheduleMatchesRuntimeCounterForCounter) {
  // Counter parity on an alarm-heavy schedule mixing a predicted kill, a
  // false-alarm storm on a survivor and an unannounced loss -- the oracle
  // must mirror alarm firing, the proactive commit (and its effect on the
  // rollback resume step) and the prediction scoreboard exactly.
  auto config = small_campaign(Topology::Pairs);
  const std::uint64_t reference = chaos::reference_run(config).final_hash;
  using runtime::InjectionKind;
  chaos::ChaosSchedule schedule{
      "alarm-parity",
      {{30, 2, InjectionKind::Alarm, 0, 1},
       {31, 2},
       {33, 1, InjectionKind::Alarm, 0, 0},
       {34, 1, InjectionKind::Alarm, 0, 0},
       {50, 0}},
      0};
  const auto run = chaos::run_one(config, schedule, reference);
  EXPECT_NE(run.outcome, chaos::ChaosOutcome::Violated) << run.detail;
  EXPECT_EQ(run.report.alarms_raised, 3u);
  EXPECT_EQ(run.report.true_predictions, 1u);
  EXPECT_EQ(run.report.missed_failures, 1u);
  EXPECT_EQ(run.report.alarms_raised, run.predicted.alarms_raised);
  EXPECT_EQ(run.report.proactive_ckpts, run.predicted.proactive_ckpts);
  EXPECT_EQ(run.report.true_predictions, run.predicted.true_predictions);
  EXPECT_EQ(run.report.missed_failures, run.predicted.missed_failures);
}

TEST(ChaosScheduleDeathTest, CliParserExitsWithConvention) {
  // Same contract as CliParser's numeric getters: message to stderr,
  // exit(2).
  EXPECT_EXIT(chaos::parse_schedule_cli("dckpt chaos", "banana"),
              testing::ExitedWithCode(2),
              "dckpt chaos: option --schedule: invalid value 'banana'");
}

TEST(ChaosSchedule, ValidateChecksRanges) {
  const auto config = small_campaign(Topology::Pairs).runtime;
  chaos::ChaosSchedule bad_node{"t", {{10, config.nodes}}, 0};
  EXPECT_THROW(chaos::validate_schedule(bad_node, config),
               std::invalid_argument);
  chaos::ChaosSchedule bad_step{"t", {{config.total_steps, 0}}, 0};
  EXPECT_THROW(chaos::validate_schedule(bad_step, config),
               std::invalid_argument);
  chaos::ChaosSchedule good{"t", {{config.total_steps - 1, 0}}, 0};
  EXPECT_NO_THROW(chaos::validate_schedule(good, config));
}

TEST(ChaosSchedule, ValidateChecksCorruptTargetHoldsTheReplica) {
  using runtime::InjectionKind;
  const auto config = small_campaign(Topology::Pairs).runtime;
  // Node 1 is node 0's pair buddy: a legal holder (so is node 0 itself).
  chaos::ChaosSchedule good{
      "t", {{10, 1, InjectionKind::CorruptReplica, 0}}, 0};
  EXPECT_NO_THROW(chaos::validate_schedule(good, config));
  // Node 2 is in another pair: it never holds node 0's image.
  chaos::ChaosSchedule wrong_holder{
      "t", {{10, 2, InjectionKind::CorruptReplica, 0}}, 0};
  EXPECT_THROW(chaos::validate_schedule(wrong_holder, config),
               std::invalid_argument);
  chaos::ChaosSchedule bad_owner{
      "t", {{10, 1, InjectionKind::CorruptReplica, config.nodes}}, 0};
  EXPECT_THROW(chaos::validate_schedule(bad_owner, config),
               std::invalid_argument);
}

TEST(ChaosSchedule, RandomSchedulesAreSeedDeterministicAndValid) {
  const auto config = small_campaign(Topology::Triples).runtime;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto a = chaos::random_schedule(config, seed);
    const auto b = chaos::random_schedule(config, seed);
    EXPECT_EQ(a.spec(), b.spec());
    EXPECT_EQ(a.seed, seed);
    EXPECT_GE(a.failures.size(), 1u);
    EXPECT_LE(a.failures.size(), 4u);
    EXPECT_NO_THROW(chaos::validate_schedule(a, config));
  }
  EXPECT_NE(chaos::random_schedule(config, 1).spec(),
            chaos::random_schedule(config, 2).spec());
}

// ----------------------------------------------- scripted danger cases

std::map<std::string, chaos::ChaosRunResult> run_scripted(
    const chaos::ChaosCampaignConfig& config) {
  const std::uint64_t reference = chaos::reference_run(config).final_hash;
  std::map<std::string, chaos::ChaosRunResult> by_name;
  for (const auto& schedule : chaos::scripted_schedules(config.runtime)) {
    by_name[schedule.name] = chaos::run_one(config, schedule, reference);
  }
  return by_name;
}

TEST(ChaosScripted, PairsOutcomesMatchTheRiskModel) {
  const auto runs = run_scripted(small_campaign(Topology::Pairs));
  const auto outcome = [&](const std::string& name) {
    auto it = runs.find(name);
    EXPECT_NE(it, runs.end()) << name;
    return it == runs.end() ? chaos::ChaosOutcome::Violated
                            : it->second.outcome;
  };
  // No run may ever be violated -- that is the engine's whole invariant.
  for (const auto& [name, run] : runs) {
    EXPECT_NE(run.outcome, chaos::ChaosOutcome::Violated)
        << name << ": " << run.detail;
  }
  EXPECT_EQ(outcome("single-mid-run"), chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("before-first-commit"), chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("last-step"), chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("during-exchange"), chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("cross-group-simultaneous"),
            chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("cross-group-staggered"), chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("repeat-offender"), chaos::ChaosOutcome::Survived);
  // A second hit inside the group is fatal: simultaneously, inside the
  // re-replication window, or as a whole-group wipe.
  EXPECT_EQ(outcome("same-step-group-double"),
            chaos::ChaosOutcome::FatalDetected);
  EXPECT_EQ(outcome("risk-window-buddy"), chaos::ChaosOutcome::FatalDetected);
  EXPECT_EQ(outcome("group-wipe"), chaos::ChaosOutcome::FatalDetected);
  // Corruption families: pairs keep a single remote replica, so corrupting
  // it (or both copies) before the kill is fatal-but-detected; transfer
  // faults only delay the refill and stay survivable.
  EXPECT_EQ(outcome("corrupt-preferred-then-kill"),
            chaos::ChaosOutcome::FatalDetected);
  EXPECT_EQ(outcome("corrupt-survivor-failover"),
            chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("corrupt-both-replicas"),
            chaos::ChaosOutcome::FatalDetected);
  EXPECT_EQ(outcome("latent-corruption-commit-heals"),
            chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("torn-refill-in-risk-window"),
            chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("refill-retries-exhausted"),
            chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("corrupt-refill-source"), chaos::ChaosOutcome::Survived);
  // Past the refill the same double hit must be masked again.
  EXPECT_EQ(outcome("after-risk-window"), chaos::ChaosOutcome::Survived);
}

TEST(ChaosScripted, TriplesDieOnInGroupDoublesLikeTheRotationPredicts) {
  const auto runs = run_scripted(small_campaign(Topology::Triples));
  for (const auto& [name, run] : runs) {
    EXPECT_NE(run.outcome, chaos::ChaosOutcome::Violated)
        << name << ": " << run.detail;
  }
  const auto outcome = [&](const std::string& name) {
    return runs.at(name).outcome;
  };
  EXPECT_EQ(outcome("single-mid-run"), chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("cross-group-simultaneous"),
            chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("repeat-offender"), chaos::ChaosOutcome::Survived);
  // Rotation places the third member's two replicas exactly on the other
  // two members' stores, so *any* in-group double hit (simultaneous or
  // inside the window) destroys both copies of someone's image.
  EXPECT_EQ(outcome("same-step-group-double"),
            chaos::ChaosOutcome::FatalDetected);
  EXPECT_EQ(outcome("risk-window-buddy"),
            chaos::ChaosOutcome::FatalDetected);
  EXPECT_EQ(outcome("group-wipe"), chaos::ChaosOutcome::FatalDetected);
  EXPECT_EQ(outcome("triple-cascade"), chaos::ChaosOutcome::FatalDetected);
  // Triples carry a second remote replica: a corrupt preferred image fails
  // over to the secondary instead of degrading the run.
  EXPECT_EQ(outcome("corrupt-preferred-then-kill"),
            chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("corrupt-survivor-failover"),
            chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("corrupt-both-replicas"),
            chaos::ChaosOutcome::FatalDetected);
  EXPECT_EQ(outcome("latent-corruption-commit-heals"),
            chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("torn-refill-in-risk-window"),
            chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("refill-retries-exhausted"),
            chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("corrupt-refill-source"), chaos::ChaosOutcome::Survived);
  {
    const auto& run = runs.at("corrupt-preferred-then-kill");
    EXPECT_EQ(run.report.failovers, 1u) << run.detail;
  }
  // Once the refill lands, the same double hit is masked again.
  EXPECT_EQ(outcome("after-risk-window"), chaos::ChaosOutcome::Survived);
}

TEST(ChaosScripted, FatalRunsReportCleanly) {
  const auto runs = run_scripted(small_campaign(Topology::Pairs));
  const auto& fatal = runs.at("risk-window-buddy");
  EXPECT_TRUE(fatal.report.fatal);
  EXPECT_NE(fatal.report.fatal_reason.find("no surviving replica"),
            std::string::npos);
  // Typed degraded-mode report: the run completed (no exception), carries
  // the fatal coordinates as fields, and the classifier matched them
  // against the oracle without string matching.
  EXPECT_TRUE(fatal.report.degraded);
  EXPECT_GT(fatal.report.degraded_steps, 0u);
  EXPECT_EQ(fatal.report.fatal_step, fatal.schedule.failures[1].step);
  EXPECT_TRUE(fatal.predicted.fatal);
  EXPECT_EQ(fatal.predicted.fatal_step, fatal.schedule.failures[1].step);
  EXPECT_EQ(fatal.report.fatal_node, fatal.predicted.unrecoverable_node);
}

// --------------------------------------------------- randomized campaigns

TEST(ChaosCampaign, TwoHundredRandomRunsPairsNeverViolate) {
  auto config = small_campaign(Topology::Pairs);
  config.random_runs = 200;
  config.campaign_seed = 20260805;
  const auto summary = chaos::run_campaign(config);
  EXPECT_EQ(summary.runs.size(), 200u + chaos::scripted_schedules(
                                            config.runtime).size());
  EXPECT_EQ(summary.violated, 0u);
  for (const auto& run : summary.runs) {
    EXPECT_NE(run.outcome, chaos::ChaosOutcome::Violated)
        << run.schedule.name << " seed " << run.schedule.seed << ": "
        << run.detail << "\n  " << run.repro;
  }
  // The adversarial bias must actually reach both classes.
  EXPECT_GT(summary.survived, 0u);
  EXPECT_GT(summary.fatal_detected, 0u);
  EXPECT_EQ(summary.survived + summary.fatal_detected, summary.runs.size());
}

TEST(ChaosCampaign, TwoHundredRandomRunsTriplesNeverViolate) {
  auto config = small_campaign(Topology::Triples);
  config.random_runs = 200;
  config.campaign_seed = 20260805;
  const auto summary = chaos::run_campaign(config);
  EXPECT_EQ(summary.violated, 0u);
  EXPECT_GT(summary.survived, 0u);
  EXPECT_GT(summary.fatal_detected, 0u);
}

TEST(ChaosCampaign, SurvivedRunsAreHashVerified) {
  auto config = small_campaign(Topology::Pairs);
  config.random_runs = 40;
  const auto summary = chaos::run_campaign(config);
  for (const auto& run : summary.runs) {
    if (run.outcome != chaos::ChaosOutcome::Survived) continue;
    EXPECT_EQ(run.report.final_hash, summary.reference_hash);
    // Every recovery restored an image whose hash was re-checked against
    // the committed one inside rollback_all; a mismatch would have been
    // fatal, so reaching here with matching counters is the verification.
    EXPECT_EQ(run.report.recoveries, run.predicted.recoveries);
  }
}

// ------------------------------------------------------- reproducibility

TEST(ChaosCampaign, ReproCommandReproducesEveryRun) {
  auto config = small_campaign(Topology::Pairs);
  config.random_runs = 25;
  const auto summary = chaos::run_campaign(config);
  const std::uint64_t reference = summary.reference_hash;
  for (const auto& run : summary.runs) {
    // The repro line carries the schedule spec; replaying it through the
    // parser (the same path `dckpt chaos --schedule=` takes) must yield an
    // identical classification and report.
    EXPECT_NE(run.repro.find("dckpt chaos"), std::string::npos);
    EXPECT_NE(run.repro.find("--seed=" + std::to_string(run.schedule.seed)),
              std::string::npos);
    EXPECT_NE(run.repro.find("--schedule=" + run.schedule.spec()),
              std::string::npos);
    auto replay = chaos::ChaosSchedule::parse(run.schedule.spec());
    const auto again = chaos::run_one(config, replay, reference);
    EXPECT_EQ(again.outcome, run.outcome);
    EXPECT_EQ(again.report.final_hash, run.report.final_hash);
    EXPECT_EQ(again.report.steps_executed, run.report.steps_executed);
    EXPECT_EQ(again.report.risk_steps, run.report.risk_steps);
  }
}

TEST(ChaosCampaign, SummaryIsThreadCountInvariant) {
  // Satellite: byte-identical JSONL no matter how the campaign is spread
  // across workers.
  auto config = small_campaign(Topology::Pairs);
  config.random_runs = 30;
  std::string exports[3];
  const std::size_t threads[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    config.threads = threads[i];
    std::ostringstream out;
    chaos::write_campaign_jsonl(out, chaos::run_campaign(config));
    exports[i] = out.str();
  }
  EXPECT_EQ(exports[0], exports[1]);
  EXPECT_EQ(exports[0], exports[2]);
}

TEST(ChaosCampaign, ExportRoundTripsThroughJsonParser) {
  auto config = small_campaign(Topology::Triples);
  config.random_runs = 5;
  const auto summary = chaos::run_campaign(config);
  std::ostringstream out;
  chaos::write_campaign_jsonl(out, summary);
  const auto lines = dckpt::util::parse_jsonl(out.str());
  ASSERT_EQ(lines.size(), summary.runs.size() + 1);
  EXPECT_EQ(lines[0].at("record").as_string(), "chaos_campaign");
  EXPECT_EQ(lines[0].at("violated").as_number(), 0.0);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].at("record").as_string(), "chaos_run");
    EXPECT_EQ(lines[i].at("index").as_number(),
              static_cast<double>(i - 1));
    const std::string outcome = lines[i].at("outcome").as_string();
    EXPECT_TRUE(outcome == "survived" || outcome == "fatal-detected")
        << outcome;
    if (outcome == "survived") {
      EXPECT_EQ(lines[i].at("report").at("final_hash").as_string(),
                lines[0].at("reference_hash").as_string());
    }
  }
}

// ------------------------------------------- shadow-vs-runtime property

struct DifferentialCase {
  chaos::ChaosCampaignConfig config;
  chaos::ChaosSchedule schedule;
};

TEST(ChaosProperty, ShadowOracleMatchesRuntimeOnRandomConfigs) {
  // The campaign fixes one configuration; this forall also varies the
  // runtime shape (topology, staging, window width, interval) so the
  // oracle's control-flow mirror is exercised across the whole config
  // space, with the counter comparison as the equivalence check.
  proptest::ForallConfig forall_config;
  forall_config.seed = 0xd1ffe7;
  forall_config.iterations = 120;
  proptest::forall<DifferentialCase>(
      forall_config,
      [](proptest::Gen& gen) {
        DifferentialCase c;
        const bool pairs = gen.boolean();
        c.config.runtime.topology =
            pairs ? Topology::Pairs : Topology::Triples;
        c.config.runtime.nodes =
            (pairs ? 2 : 3) * gen.integer(1, 4);
        c.config.runtime.cells_per_node = 32;
        c.config.runtime.checkpoint_interval = gen.integer(3, 16);
        c.config.runtime.total_steps =
            c.config.runtime.checkpoint_interval * gen.integer(2, 6);
        c.config.runtime.staging_steps =
            gen.integer(0, c.config.runtime.checkpoint_interval);
        c.config.runtime.rereplication_delay_steps = gen.integer(0, 8);
        c.config.kernel = "counter";
        c.schedule = chaos::random_schedule(c.config.runtime,
                                            gen.rng()(), 5);
        return c;
      },
      [](const DifferentialCase& c) -> std::optional<std::string> {
        const std::uint64_t reference =
            chaos::reference_run(c.config).final_hash;
        const auto run = chaos::run_one(c.config, c.schedule, reference);
        if (run.outcome == chaos::ChaosOutcome::Violated) {
          return run.detail + " [" + run.repro + "]";
        }
        return std::nullopt;
      },
      // Shrink by dropping one failure at a time from the schedule.
      [](const DifferentialCase& c) {
        std::vector<DifferentialCase> candidates;
        for (std::size_t drop = 0; drop < c.schedule.failures.size();
             ++drop) {
          if (c.schedule.failures.size() == 1) break;
          DifferentialCase smaller = c;
          smaller.schedule.failures.erase(
              smaller.schedule.failures.begin() +
              static_cast<std::ptrdiff_t>(drop));
          candidates.push_back(std::move(smaller));
        }
        return candidates;
      },
      [](const DifferentialCase& c) {
        return chaos::repro_command(c.config, c.schedule);
      });
}

// ---------------------------------------------- silent-error detection

chaos::ChaosCampaignConfig sdc_campaign(Topology topology,
                                        std::uint64_t keep_last) {
  auto config = small_campaign(topology);
  config.runtime.verify_every = 4;
  config.runtime.keep_last = keep_last;
  return config;
}

TEST(ChaosSdc, GrammarRoundTripsAndValidates) {
  using runtime::InjectionKind;
  const auto schedule = chaos::ChaosSchedule::parse("13:sdc:0,20:5");
  ASSERT_EQ(schedule.failures.size(), 2u);
  EXPECT_EQ(schedule.failures[0].kind, InjectionKind::SilentError);
  EXPECT_EQ(schedule.failures[0].node, 0u);
  EXPECT_EQ(schedule.spec(), "13:sdc:0,20:5");
  EXPECT_EQ(chaos::ChaosSchedule::parse(schedule.spec()).spec(),
            schedule.spec());
  EXPECT_THROW(chaos::ChaosSchedule::parse("13:sdc"), std::invalid_argument);
  EXPECT_THROW(chaos::ChaosSchedule::parse("13:sdc:0:1"),
               std::invalid_argument);
}

TEST(ChaosSdc, LatentStrikeSurvivesViaRollbackLadder) {
  // Strike at step 13 (period [12, 24)): commits at 24/36/48 capture the
  // taint, the commit at 12 predates it. The verification at step 48 (k = 4
  // periods of 12) walks the keep-last-3 ladder {36, 24, 12}: two tainted
  // rungs, then the clean one -> rollback depth 2, replay from step 12.
  const auto config = sdc_campaign(Topology::Pairs, 3);
  const auto schedule = chaos::ChaosSchedule::parse("13:sdc:0");
  const auto run = chaos::run_one(config, schedule,
                                  chaos::reference_run(config).final_hash);
  EXPECT_EQ(run.outcome, chaos::ChaosOutcome::Survived) << run.detail;
  EXPECT_EQ(run.report.sdc_injected, 1u);
  EXPECT_EQ(run.report.sdc_detected, 1u);
  EXPECT_EQ(run.report.rollback_depth, 2u);
  EXPECT_GT(run.report.verifications_run, 0u);
  EXPECT_EQ(run.report.replayed_steps, 36u);
}

TEST(ChaosSdc, RetentionTooShallowIsFatalButDetected) {
  // Same strike, keep-last-2: the ladder holds only tainted rungs when the
  // verification fires, so the runtime must accept the loss (degraded),
  // exactly as the oracle predicts -- detected, never silent.
  const auto config = sdc_campaign(Topology::Pairs, 2);
  const auto schedule = chaos::ChaosSchedule::parse("13:sdc:0");
  const auto run = chaos::run_one(config, schedule,
                                  chaos::reference_run(config).final_hash);
  EXPECT_EQ(run.outcome, chaos::ChaosOutcome::FatalDetected) << run.detail;
  EXPECT_EQ(run.report.sdc_injected, 1u);
  EXPECT_EQ(run.report.sdc_detected, 1u);
  EXPECT_TRUE(run.report.fatal);
}

TEST(ChaosSdc, ScriptedSdcFamiliesNeverViolate) {
  for (const Topology topology : {Topology::Pairs, Topology::Triples}) {
    const auto config = sdc_campaign(topology, 3);
    const auto runs = run_scripted(config);
    // Verification enabled adds the sdc-* scripted families.
    EXPECT_TRUE(runs.count("sdc-single"));
    EXPECT_TRUE(runs.count("sdc-before-first-commit"));
    for (const auto& [name, run] : runs) {
      EXPECT_NE(run.outcome, chaos::ChaosOutcome::Violated)
          << name << ": " << run.detail << "\n  " << run.repro;
    }
  }
}

TEST(ChaosSdc, RandomizedSdcCampaignNeverViolates) {
  for (const Topology topology : {Topology::Pairs, Topology::Triples}) {
    auto config = sdc_campaign(topology, 3);
    config.random_runs = 100;
    config.campaign_seed = 20260809;
    const auto summary = chaos::run_campaign(config);
    EXPECT_EQ(summary.violated, 0u);
    for (const auto& run : summary.runs) {
      EXPECT_NE(run.outcome, chaos::ChaosOutcome::Violated)
          << run.schedule.name << " seed " << run.schedule.seed << ": "
          << run.detail << "\n  " << run.repro;
    }
  }
}

// ----------------------------------------- mutation-style oracle checks
//
// classify_run with a deliberately tampered prediction: if flipping one SDC
// counter by one does NOT flip the outcome to Violated, that counter is not
// actually guarded by the classifier and a silent-survival bug could hide
// behind it.

struct SdcCounterMutation {
  const char* name;
  std::uint64_t chaos::ShadowPrediction::* field;
};

constexpr SdcCounterMutation kSdcMutations[] = {
    {"sdc_injected", &chaos::ShadowPrediction::sdc_injected},
    {"verifications_run", &chaos::ShadowPrediction::verifications_run},
    {"sdc_detected", &chaos::ShadowPrediction::sdc_detected},
    {"rollback_depth", &chaos::ShadowPrediction::rollback_depth},
};

TEST(ChaosSdcMutation, EachCounterIsGuardedOnSurvivableSchedule) {
  const auto config = sdc_campaign(Topology::Pairs, 3);
  const auto schedule = chaos::ChaosSchedule::parse("13:sdc:0");
  const std::uint64_t reference = chaos::reference_run(config).final_hash;
  const auto predicted =
      chaos::predict_outcome(config.shadow(), schedule.failures);
  // Control: the untampered prediction classifies clean.
  const auto clean =
      chaos::classify_run(config, schedule, predicted, reference);
  ASSERT_EQ(clean.outcome, chaos::ChaosOutcome::Survived) << clean.detail;
  for (const auto& mutation : kSdcMutations) {
    auto tampered = predicted;
    tampered.*(mutation.field) += 1;
    const auto run =
        chaos::classify_run(config, schedule, tampered, reference);
    EXPECT_EQ(run.outcome, chaos::ChaosOutcome::Violated)
        << "counter " << mutation.name
        << " not guarded: tampering it went unnoticed";
    EXPECT_NE(run.detail.find(mutation.name), std::string::npos)
        << "violation detail should name the diverging counter; got: "
        << run.detail;
  }
}

TEST(ChaosSdcMutation, EachCounterIsGuardedOnFatalSchedule) {
  // Guard must hold on the degraded path too: the fatal-accept outcome
  // carries its own counter story (detections without a matching rollback).
  const auto config = sdc_campaign(Topology::Pairs, 2);
  const auto schedule = chaos::ChaosSchedule::parse("13:sdc:0");
  const std::uint64_t reference = chaos::reference_run(config).final_hash;
  const auto predicted =
      chaos::predict_outcome(config.shadow(), schedule.failures);
  const auto clean =
      chaos::classify_run(config, schedule, predicted, reference);
  ASSERT_EQ(clean.outcome, chaos::ChaosOutcome::FatalDetected)
      << clean.detail;
  for (const auto& mutation : kSdcMutations) {
    auto tampered = predicted;
    tampered.*(mutation.field) += 1;
    const auto run =
        chaos::classify_run(config, schedule, tampered, reference);
    EXPECT_EQ(run.outcome, chaos::ChaosOutcome::Violated)
        << "counter " << mutation.name << " not guarded on the fatal path";
  }
}

// ------------------------------------- differential checkpoints (dcp)

chaos::ChaosCampaignConfig dcp_campaign(Topology topology) {
  auto config = small_campaign(topology);
  // dcp composes with the blocking exchange only: chains hang off the
  // committed base, so no staging, no verification ladder, keep-last-1.
  config.runtime.staging_steps = 0;
  config.runtime.dcp_stack_size = 3;
  return config;
}

TEST(ChaosDcp, TornDeltaGrammarRoundTrips) {
  using runtime::InjectionKind;
  const auto schedule =
      chaos::ChaosSchedule::parse("25:torndelta:0:1,30:torndelta:3:2,40:1");
  ASSERT_EQ(schedule.failures.size(), 3u);
  EXPECT_EQ(schedule.failures[0].kind, InjectionKind::TornDelta);
  EXPECT_EQ(schedule.failures[0].node, 0u);
  EXPECT_EQ(schedule.failures[0].window, 1u);  // depth rides in window
  EXPECT_EQ(schedule.failures[1].window, 2u);
  EXPECT_EQ(schedule.failures[2].kind, InjectionKind::NodeLoss);
  EXPECT_EQ(schedule.spec(), "25:torndelta:0:1,30:torndelta:3:2,40:1");
  EXPECT_EQ(chaos::ChaosSchedule::parse(schedule.spec()).spec(),
            schedule.spec());
}

TEST(ChaosDcp, TornDeltaGrammarRejectsMalformedEntries) {
  EXPECT_THROW(chaos::ChaosSchedule::parse("25:torndelta:0"),
               std::invalid_argument);  // missing depth
  EXPECT_THROW(chaos::ChaosSchedule::parse("25:torndelta:0:x"),
               std::invalid_argument);
  EXPECT_THROW(chaos::ChaosSchedule::parse("25:torndelta:0:1:2"),
               std::invalid_argument);  // trailing field
  EXPECT_THROW(chaos::ChaosSchedule::parse("25:torndelta:"),
               std::invalid_argument);
}

TEST(ChaosDcp, ValidateRequiresDcpAndBoundsTheDepth) {
  const auto dcp_config = dcp_campaign(Topology::Pairs).runtime;
  const auto plain_config = small_campaign(Topology::Pairs).runtime;
  const auto schedule = chaos::ChaosSchedule::parse("25:torndelta:0:1");
  EXPECT_NO_THROW(chaos::validate_schedule(schedule, dcp_config));
  // Without dcp there are no chains to tear.
  EXPECT_THROW(chaos::validate_schedule(schedule, plain_config),
               std::invalid_argument);
  // Depth 0 and depth >= K address no layer a K-chain can hold.
  EXPECT_THROW(
      chaos::validate_schedule(chaos::ChaosSchedule::parse("25:torndelta:0:0"),
                               dcp_config),
      std::invalid_argument);
  EXPECT_THROW(
      chaos::validate_schedule(chaos::ChaosSchedule::parse("25:torndelta:0:3"),
                               dcp_config),
      std::invalid_argument);
}

TEST(ChaosDcp, TornChainFailsOverCounterForCounter) {
  // Triples: tearing the sole delta layer on node 0's preferred holder
  // forces the post-kill recovery onto the secondary's intact chain -- one
  // torn-chain failover, with every dcp counter mirrored by the oracle.
  const auto config = dcp_campaign(Topology::Triples);
  const auto schedule = chaos::ChaosSchedule::parse("25:torndelta:0:1,25:0");
  const auto run = chaos::run_one(config, schedule,
                                  chaos::reference_run(config).final_hash);
  EXPECT_EQ(run.outcome, chaos::ChaosOutcome::Survived) << run.detail;
  EXPECT_EQ(run.report.torn_chain_failovers, 1u);
  EXPECT_GT(run.report.delta_commits, 0u);
  EXPECT_GT(run.report.full_commits, 0u);
  EXPECT_GT(run.report.chain_replays, 0u);
  EXPECT_GE(run.report.chain_replay_depth, run.report.chain_replays);
  EXPECT_EQ(run.report.delta_commits, run.predicted.delta_commits);
  EXPECT_EQ(run.report.full_commits, run.predicted.full_commits);
  EXPECT_EQ(run.report.chain_replays, run.predicted.chain_replays);
  EXPECT_EQ(run.report.chain_replay_depth, run.predicted.chain_replay_depth);
  EXPECT_EQ(run.report.torn_chain_failovers,
            run.predicted.torn_chain_failovers);
}

TEST(ChaosDcp, CommitCadenceFollowsTheStack) {
  // K = 3: every third commit is full (the first exchange included), the
  // rest ship deltas -- 96 steps at interval 12 commit 7 times (steps
  // 12..84), split F D D F D D F: 3 full + 4 delta.
  const auto config = dcp_campaign(Topology::Pairs);
  const auto schedule = chaos::ChaosSchedule::parse("90:7");
  const auto run = chaos::run_one(config, schedule,
                                  chaos::reference_run(config).final_hash);
  EXPECT_EQ(run.outcome, chaos::ChaosOutcome::Survived) << run.detail;
  EXPECT_EQ(run.report.delta_commits + run.report.full_commits, 7u);
  EXPECT_EQ(run.report.full_commits, 3u);
  EXPECT_EQ(run.report.delta_commits, run.predicted.delta_commits);
  EXPECT_EQ(run.report.full_commits, run.predicted.full_commits);
}

TEST(ChaosDcp, ScriptedDcpFamiliesNeverViolate) {
  for (const Topology topology : {Topology::Pairs, Topology::Triples}) {
    const auto runs = run_scripted(dcp_campaign(topology));
    // dcp enabled adds the dcp-* scripted families.
    EXPECT_TRUE(runs.count("dcp-torn-then-kill"));
    EXPECT_TRUE(runs.count("dcp-chain-exhausted"));
    EXPECT_TRUE(runs.count("dcp-torn-heals-at-full"));
    for (const auto& [name, run] : runs) {
      EXPECT_NE(run.outcome, chaos::ChaosOutcome::Violated)
          << name << ": " << run.detail << "\n  " << run.repro;
    }
    // Exhausting every rung's chain is fatal -- but detected, never silent.
    EXPECT_EQ(runs.at("dcp-chain-exhausted").outcome,
              chaos::ChaosOutcome::FatalDetected);
    // A full exchange clears the torn chain before the late kill lands.
    EXPECT_EQ(runs.at("dcp-torn-heals-at-full").outcome,
              chaos::ChaosOutcome::Survived);
  }
}

TEST(ChaosDcp, RandomizedDcpCampaignNeverViolates) {
  for (const Topology topology : {Topology::Pairs, Topology::Triples}) {
    auto config = dcp_campaign(topology);
    config.random_runs = 100;
    config.campaign_seed = 20260809;
    const auto summary = chaos::run_campaign(config);
    EXPECT_EQ(summary.violated, 0u);
    for (const auto& run : summary.runs) {
      EXPECT_NE(run.outcome, chaos::ChaosOutcome::Violated)
          << run.schedule.name << " seed " << run.schedule.seed << ": "
          << run.detail << "\n  " << run.repro;
    }
  }
}

constexpr SdcCounterMutation kDcpMutations[] = {
    {"delta_commits", &chaos::ShadowPrediction::delta_commits},
    {"full_commits", &chaos::ShadowPrediction::full_commits},
    {"chain_replays", &chaos::ShadowPrediction::chain_replays},
    {"chain_replay_depth", &chaos::ShadowPrediction::chain_replay_depth},
    {"torn_chain_failovers", &chaos::ShadowPrediction::torn_chain_failovers},
};

TEST(ChaosDcpMutation, EachCounterIsGuardedOnTornChainSchedule) {
  const auto config = dcp_campaign(Topology::Triples);
  const auto schedule = chaos::ChaosSchedule::parse("25:torndelta:0:1,25:0");
  const std::uint64_t reference = chaos::reference_run(config).final_hash;
  const auto predicted =
      chaos::predict_outcome(config.shadow(), schedule.failures);
  const auto clean =
      chaos::classify_run(config, schedule, predicted, reference);
  ASSERT_EQ(clean.outcome, chaos::ChaosOutcome::Survived) << clean.detail;
  for (const auto& mutation : kDcpMutations) {
    auto tampered = predicted;
    tampered.*(mutation.field) += 1;
    const auto run =
        chaos::classify_run(config, schedule, tampered, reference);
    EXPECT_EQ(run.outcome, chaos::ChaosOutcome::Violated)
        << "counter " << mutation.name
        << " not guarded: tampering it went unnoticed";
    EXPECT_NE(run.detail.find(mutation.name), std::string::npos)
        << "violation detail should name the diverging counter; got: "
        << run.detail;
  }
}

// --------------------------------------------------- spare-pool bridge

TEST(ChaosSparePool, DelayStepsTrackTheErlangModel) {
  dckpt::model::SparePoolSpec spec;
  spec.spares = 4;
  spec.repair_time = 3600.0;
  spec.detection = 30.0;
  const double mtbf = 1800.0;
  const std::uint64_t fine = chaos::spare_pool_delay_steps(spec, mtbf, 10.0);
  const std::uint64_t coarse =
      chaos::spare_pool_delay_steps(spec, mtbf, 120.0);
  EXPECT_GE(fine, 1u);
  EXPECT_GE(coarse, 1u);
  EXPECT_GE(fine, coarse);  // finer steps -> more steps for the same wait
  // Ceil of the model's effective downtime, never rounded to zero.
  const double downtime = dckpt::model::effective_downtime(spec, mtbf);
  EXPECT_EQ(fine, static_cast<std::uint64_t>(std::ceil(downtime / 10.0)));
  // A big pool still costs at least the detection step.
  spec.spares = 1024;
  EXPECT_GE(chaos::spare_pool_delay_steps(spec, mtbf, 3600.0), 1u);
  EXPECT_THROW(chaos::spare_pool_delay_steps(spec, mtbf, 0.0),
               std::invalid_argument);
  EXPECT_THROW(chaos::spare_pool_delay_steps(spec, mtbf, -1.0),
               std::invalid_argument);
}

TEST(ChaosSparePool, DelayWidensTheObservedRiskWindow) {
  // End to end: the same buddy double hit is masked when the spare pool
  // refills quickly but fatal when the allocation delay keeps the window
  // open. The failure at 25 abandons the staged set and replays from step
  // 12, so the refill needs > 14 steps to still be pending at step 26.
  auto config = small_campaign(Topology::Pairs);
  chaos::ChaosSchedule schedule{"window-probe", {{25, 0}, {26, 1}}, 0};
  {
    auto c = config;
    c.runtime.rereplication_delay_steps = 2;
    const auto run =
        chaos::run_one(c, schedule, chaos::reference_run(c).final_hash);
    EXPECT_EQ(run.outcome, chaos::ChaosOutcome::Survived) << run.detail;
  }
  {
    auto c = config;
    c.runtime.rereplication_delay_steps = 25;
    const auto run =
        chaos::run_one(c, schedule, chaos::reference_run(c).final_hash);
    EXPECT_EQ(run.outcome, chaos::ChaosOutcome::FatalDetected) << run.detail;
  }
}

}  // namespace
