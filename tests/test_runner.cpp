#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include "model/scenario.hpp"

namespace {

using namespace dckpt::sim;
using dckpt::model::Protocol;

SimConfig quick_config() {
  SimConfig config;
  config.protocol = Protocol::DoubleNbl;
  config.params = dckpt::model::base_scenario().params.with_overhead(1.0);
  config.params.nodes = 12;
  config.params.mtbf = 500.0;
  config.period = 100.0;
  config.t_base = 5000.0;
  config.stop_on_fatal = false;
  return config;
}

TEST(MonteCarloTest, AggregatesRequestedTrials) {
  MonteCarloOptions options;
  options.trials = 50;
  options.threads = 2;
  const auto result = run_monte_carlo(quick_config(), options);
  EXPECT_EQ(result.waste.count() + result.diverged, 50u);
  EXPECT_EQ(result.success.trials(), result.waste.count());
  EXPECT_GT(result.waste.mean(), 0.0);
  EXPECT_LT(result.waste.mean(), 1.0);
  EXPECT_GT(result.failures.mean(), 0.0);
}

TEST(MonteCarloTest, DeterministicAcrossThreadCounts) {
  MonteCarloOptions one_thread;
  one_thread.trials = 40;
  one_thread.threads = 1;
  one_thread.seed = 99;
  MonteCarloOptions four_threads = one_thread;
  four_threads.threads = 4;
  const auto a = run_monte_carlo(quick_config(), one_thread);
  const auto b = run_monte_carlo(quick_config(), four_threads);
  EXPECT_DOUBLE_EQ(a.waste.mean(), b.waste.mean());
  EXPECT_DOUBLE_EQ(a.makespan.mean(), b.makespan.mean());
  EXPECT_EQ(a.success.successes(), b.success.successes());
}

TEST(MonteCarloTest, DifferentSeedsDiffer) {
  MonteCarloOptions options;
  options.trials = 30;
  options.threads = 2;
  options.seed = 1;
  const auto a = run_monte_carlo(quick_config(), options);
  options.seed = 2;
  const auto b = run_monte_carlo(quick_config(), options);
  EXPECT_NE(a.makespan.mean(), b.makespan.mean());
}

TEST(MonteCarloTest, WeibullOptionUsesPerNodeStreams) {
  MonteCarloOptions options;
  options.trials = 20;
  options.threads = 2;
  options.weibull = dckpt::util::Weibull::from_mean(
      0.7, quick_config().params.node_mtbf());
  const auto result = run_monte_carlo(quick_config(), options);
  EXPECT_EQ(result.waste.count() + result.diverged, 20u);
  EXPECT_GT(result.failures.mean(), 0.0);
}

TEST(MonteCarloTest, SharedPoolOverload) {
  dckpt::util::ThreadPool pool(2);
  MonteCarloOptions options;
  options.trials = 10;
  const auto a = run_monte_carlo(quick_config(), options, pool);
  const auto b = run_monte_carlo(quick_config(), options, pool);
  EXPECT_DOUBLE_EQ(a.waste.mean(), b.waste.mean());
}

TEST(MonteCarloTest, MetricsDisabledByDefault) {
  MonteCarloOptions options;
  options.trials = 10;
  options.threads = 2;
  const auto result = run_monte_carlo(quick_config(), options);
  EXPECT_FALSE(result.metrics.has_value());
  EXPECT_EQ(result.risk_time.count(), 10u);
  EXPECT_GT(result.risk_time.mean(), 0.0);
}

TEST(MonteCarloTest, MetricsHistogramsCoverEveryTrial) {
  MonteCarloOptions options;
  options.trials = 50;
  options.threads = 2;
  options.metrics = MetricsSpec{};
  const auto result = run_monte_carlo(quick_config(), options);
  ASSERT_TRUE(result.metrics.has_value());
  const std::uint64_t completed = options.trials - result.diverged;
  EXPECT_EQ(result.metrics->waste.total_count(), completed);
  EXPECT_EQ(result.metrics->slowdown.total_count(), completed);
  EXPECT_EQ(result.metrics->failures.total_count(), completed);
  EXPECT_EQ(result.metrics->risk_fraction.total_count(), completed);
  // Waste and risk fraction live in [0, 1): nothing should leak out of
  // range, and nothing can be non-finite for completed trials.
  EXPECT_EQ(result.metrics->waste.underflow(), 0u);
  EXPECT_EQ(result.metrics->waste.overflow(), 0u);
  EXPECT_EQ(result.metrics->waste.nonfinite(), 0u);
  EXPECT_EQ(result.metrics->risk_fraction.nonfinite(), 0u);
  // Histogram mass should agree with the scalar stats.
  EXPECT_NEAR(result.metrics->waste.quantile(0.5), result.waste.mean(),
              3.0 * result.waste.stddev() + 1.0 / 64.0);
}

TEST(MonteCarloTest, MetricsSpecIsValidated) {
  MonteCarloOptions options;
  options.trials = 5;
  options.metrics = MetricsSpec{};
  options.metrics->bins = 0;
  EXPECT_THROW(run_monte_carlo(quick_config(), options),
               std::invalid_argument);
}

TEST(MonteCarloTest, DegenerateTrialsAreCountedNotRecorded) {
  MonteCarloMetrics metrics{MetricsSpec{}};
  TrialResult no_work;  // t_base <= 0: slowdown/risk ratios are undefined
  no_work.t_base = 0.0;
  no_work.makespan = 100.0;
  metrics.add(no_work);
  TrialResult no_time;  // makespan <= 0: same story
  no_time.t_base = 50.0;
  no_time.makespan = 0.0;
  metrics.add(no_time);
  EXPECT_EQ(metrics.degenerate, 2u);
  // Neither trial may leak a sentinel 0.0 into any histogram: the old bug
  // recorded slowdown = 0 which landed in the underflow bucket (range
  // starts at 1.0) and skewed every quantile of small campaigns.
  EXPECT_EQ(metrics.waste.total_count(), 0u);
  EXPECT_EQ(metrics.slowdown.total_count(), 0u);
  EXPECT_EQ(metrics.slowdown.underflow(), 0u);
  EXPECT_EQ(metrics.risk_fraction.total_count(), 0u);
  EXPECT_EQ(metrics.failures.total_count(), 0u);

  MonteCarloMetrics other{MetricsSpec{}};
  TrialResult good;
  good.t_base = 50.0;
  good.makespan = 60.0;
  other.add(good);
  other.merge(metrics);  // degenerate counts survive chunk merges
  EXPECT_EQ(other.degenerate, 2u);
  EXPECT_EQ(other.slowdown.total_count(), 1u);
}

TEST(MonteCarloTest, ZeroTrialsYieldEmptyResult) {
  MonteCarloOptions options;
  options.trials = 0;
  options.metrics = MetricsSpec{};
  const auto result = run_monte_carlo(quick_config(), options);
  EXPECT_EQ(result.waste.count(), 0u);
  EXPECT_EQ(result.success.trials(), 0u);
  EXPECT_EQ(result.diverged, 0u);
  ASSERT_TRUE(result.metrics.has_value());
  EXPECT_EQ(result.metrics->waste.total_count(), 0u);
  EXPECT_EQ(result.kernel.lanes, 0u);

  // The pool-reusing overload must agree (it once indexed partial[0] out of
  // an empty chunk vector when trials == 0).
  dckpt::util::ThreadPool pool(2);
  const auto pooled = run_monte_carlo(quick_config(), options, pool);
  EXPECT_EQ(pooled.waste.count(), 0u);
  EXPECT_EQ(pooled.success.trials(), 0u);
  ASSERT_TRUE(pooled.metrics.has_value());
  EXPECT_EQ(pooled.metrics->slowdown.total_count(), 0u);
}

TEST(MonteCarloTest, FatalRunsCountAgainstSuccess) {
  auto config = quick_config();
  config.params.mtbf = 20.0;  // brutal failure rate: fatalities happen
  config.t_base = 2000.0;
  config.stop_on_fatal = true;
  config.max_makespan = 1e7;
  MonteCarloOptions options;
  options.trials = 60;
  options.threads = 2;
  const auto result = run_monte_carlo(config, options);
  EXPECT_LT(result.success.estimate(), 1.0);
}

}  // namespace
