#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace {

using dckpt::util::Histogram;

TEST(HistogramTest, BinsSamplesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.99);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.total_count(), 4u);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi edge counts as overflow (half-open range)
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total_count(), 3u);
}

TEST(HistogramTest, NonFiniteSamplesAreRoutedToDedicatedCounter) {
  // Regression: a NaN used to fall through both range guards into a
  // float->size_t cast, which is undefined behaviour.
  Histogram h(0.0, 1.0, 4);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(0.5);
  EXPECT_EQ(h.nonfinite(), 3u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.total_count(), 4u);
  EXPECT_EQ(h.bin(2), 1u);
  // Quantiles cover in-range samples only; the lone 0.5 is the whole mass.
  EXPECT_NEAR(h.quantile(1.0), 0.75, 0.26);
  EXPECT_GE(h.quantile(0.0), 0.0);
}

TEST(HistogramTest, MergeCarriesNonFiniteCounts) {
  Histogram a(0.0, 1.0, 4), b(0.0, 1.0, 4);
  a.add(std::numeric_limits<double>::quiet_NaN());
  b.add(std::numeric_limits<double>::quiet_NaN());
  b.add(0.1);
  a.merge(b);
  EXPECT_EQ(a.nonfinite(), 2u);
  EXPECT_EQ(a.total_count(), 3u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(2.0, 6.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_lower_edge(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lower_edge(3), 5.0);
}

TEST(HistogramTest, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  dckpt::util::Xoshiro256ss rng(5);
  for (int i = 0; i < 100000; ++i) h.add(rng.next_double());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(HistogramTest, QuantileClampsArgument) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.5);
  EXPECT_NO_THROW(h.quantile(-1.0));
  EXPECT_NO_THROW(h.quantile(2.0));
}

TEST(HistogramTest, QuantileIsNanWithoutInRangeMass) {
  Histogram h(0.0, 1.0, 4);
  // Empty histogram: no mass at all.
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  // Out-of-range and non-finite samples contribute no in-range mass either.
  h.add(-5.0);
  h.add(7.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(std::isnan(h.quantile(0.0)));
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.quantile(1.0)));
  // The first in-range sample makes quantiles well-defined again.
  h.add(0.25);
  EXPECT_FALSE(std::isnan(h.quantile(0.5)));
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 5);
  a.add(1.0);
  b.add(1.5);
  b.add(9.0);
  a.merge(b);
  EXPECT_EQ(a.bin(0), 2u);
  EXPECT_EQ(a.bin(4), 1u);
  EXPECT_EQ(a.total_count(), 3u);
}

TEST(HistogramTest, MergeRejectsIncompatible) {
  Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 6), c(0.0, 9.0, 5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, RenderMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string text = h.render();
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('2'), std::string::npos);
}

}  // namespace
