#include "model/young_daly.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace dckpt::model;

CentralizedParams make_params() {
  CentralizedParams p;
  p.checkpoint = 600.0;  // global footprint to stable storage: minutes
  p.recovery = 600.0;
  p.downtime = 60.0;
  p.mtbf = 86400.0;
  return p;
}

TEST(YoungDalyTest, YoungFormula) {
  const auto p = make_params();
  EXPECT_NEAR(young_period(p),
              std::sqrt(2.0 * 86400.0 * 600.0) + 600.0, 1e-9);
}

TEST(YoungDalyTest, DalyFormula) {
  const auto p = make_params();
  EXPECT_NEAR(daly_period(p),
              std::sqrt(2.0 * (86400.0 + 660.0) * 600.0) + 600.0, 1e-9);
}

TEST(YoungDalyTest, DalyRefinementExceedsYoung) {
  const auto p = make_params();
  EXPECT_GT(daly_period(p), young_period(p));
}

TEST(YoungDalyTest, FailureCost) {
  const auto p = make_params();
  EXPECT_DOUBLE_EQ(centralized_failure_cost(p, 1000.0),
                   60.0 + 600.0 + 500.0);
}

TEST(YoungDalyTest, WasteCompositionAndBounds) {
  const auto p = make_params();
  const double period = daly_period(p);
  const double w = centralized_waste(p, period);
  EXPECT_GT(w, 0.0);
  EXPECT_LT(w, 1.0);
  const double ff = p.checkpoint / period;
  const double fail = centralized_failure_cost(p, period) / p.mtbf;
  EXPECT_NEAR(w, 1.0 - (1.0 - fail) * (1.0 - ff), 1e-12);
}

TEST(YoungDalyTest, WasteAtOptimumIsNearStationary) {
  const auto p = make_params();
  const double opt = daly_period(p);
  const double at = centralized_waste(p, opt);
  // First-order optimum: nearby periods are not substantially better.
  EXPECT_LE(at, centralized_waste(p, opt * 0.8) + 1e-3);
  EXPECT_LE(at, centralized_waste(p, opt * 1.2) + 1e-3);
}

TEST(YoungDalyTest, SaturatesToOneAtTinyMtbf) {
  auto p = make_params();
  p.mtbf = 100.0;  // far below the checkpoint time
  EXPECT_DOUBLE_EQ(centralized_waste(p, p.checkpoint), 1.0);
}

TEST(YoungDalyTest, Validation) {
  auto p = make_params();
  p.checkpoint = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = make_params();
  p.mtbf = -1.0;
  EXPECT_THROW(young_period(p), std::invalid_argument);
  p = make_params();
  EXPECT_THROW(centralized_waste(p, 10.0), std::invalid_argument);
}

TEST(YoungDalyTest, BuddyCheckpointingBeatsCentralizedAtScale) {
  // The paper's motivation: at scale, delta_local << C_global, so the
  // distributed protocols get far smaller waste. Model a 1000-node machine
  // whose global checkpoint is 500x a local one.
  CentralizedParams central;
  central.checkpoint = 1000.0;
  central.recovery = 1000.0;
  central.downtime = 60.0;
  central.mtbf = 3600.0;
  const double centralized = centralized_waste_at_optimum(central);
  EXPECT_GT(centralized, 0.5);  // unusable regime
}

}  // namespace
