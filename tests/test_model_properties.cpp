// Cross-cutting property tests: invariants that must hold for every
// protocol, scenario and parameter combination -- the guard rails under
// the individual formula tests.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "model/model_api.hpp"

namespace {

using namespace dckpt::model;

class ProtocolScenarioProperty
    : public ::testing::TestWithParam<std::tuple<Protocol, int, double>> {
 protected:
  Protocol protocol() const { return std::get<0>(GetParam()); }
  Parameters params(double mtbf = 7 * 3600.0) const {
    return paper_scenarios()[std::get<1>(GetParam())]
        .at_phi_ratio(std::get<2>(GetParam()))
        .with_mtbf(mtbf);
  }
};

TEST_P(ProtocolScenarioProperty, PeriodPartsSumToPeriod) {
  const auto p = params();
  for (double scale : {1.0, 2.0, 7.5}) {
    const double period = min_period(protocol(), p) * scale;
    const auto parts = period_parts(protocol(), p, period);
    EXPECT_NEAR(parts.part1 + parts.part2 + parts.part3, period, 1e-9);
    EXPECT_GE(parts.part3, -1e-12);
  }
}

TEST_P(ProtocolScenarioProperty, SigmaZeroAtMinimumPeriod) {
  const auto p = params();
  const auto parts =
      period_parts(protocol(), p, min_period(protocol(), p));
  EXPECT_NEAR(parts.part3, 0.0, 1e-9);
}

TEST_P(ProtocolScenarioProperty, WorkPerPeriodBelowPeriod) {
  const auto p = params();
  const double period = min_period(protocol(), p) * 3.0;
  const double work = work_per_period(protocol(), p, period);
  EXPECT_LE(work, period);
  EXPECT_GE(work, 0.0);
  // Consistency with the fault-free waste: W = P (1 - WASTE_ff).
  EXPECT_NEAR(work,
              period * (1.0 - waste_fault_free(protocol(), p, period)),
              1e-9);
}

TEST_P(ProtocolScenarioProperty, FailureCostIncreasesWithPeriod) {
  const auto p = params();
  const double lo = min_period(protocol(), p);
  double previous = -1.0;
  for (double scale : {1.0, 1.5, 2.5, 5.0, 10.0}) {
    const double f = expected_failure_cost(protocol(), p, lo * scale);
    EXPECT_GT(f, previous);
    previous = f;
  }
}

TEST_P(ProtocolScenarioProperty, FaultFreeWasteDecreasesWithPeriod) {
  const auto p = params();
  const double lo = min_period(protocol(), p);
  double previous = 2.0;
  for (double scale : {1.0, 2.0, 4.0, 8.0}) {
    const double ff = waste_fault_free(protocol(), p, lo * scale);
    EXPECT_LE(ff, previous + 1e-12);
    EXPECT_GE(ff, 0.0);
    EXPECT_LE(ff, 1.0);
    previous = ff;
  }
}

TEST_P(ProtocolScenarioProperty, WasteDecreasesWithMtbf) {
  const auto base = params();
  const double period = min_period(protocol(), base) * 3.0;
  double previous = 1.5;
  for (double mtbf : {300.0, 1800.0, 7200.0, 86400.0}) {
    const double w = waste(protocol(), base.with_mtbf(mtbf), period);
    EXPECT_LE(w, previous + 1e-12) << "M=" << mtbf;
    previous = w;
  }
}

TEST_P(ProtocolScenarioProperty, OptimalWasteDecreasesWithMtbf) {
  const auto base = params();
  double previous = 1.5;
  for (double mtbf : {600.0, 3600.0, 6.0 * 3600.0, 86400.0}) {
    const double w =
        waste_at_optimal_period(protocol(), base.with_mtbf(mtbf));
    EXPECT_LE(w, previous + 1e-12) << "M=" << mtbf;
    previous = w;
  }
}

TEST_P(ProtocolScenarioProperty, OptimalPeriodGrowsWithMtbf) {
  const auto base = params();
  double previous = 0.0;
  for (double mtbf : {1800.0, 7200.0, 12.0 * 3600.0, 86400.0}) {
    const auto opt =
        optimal_period_closed_form(protocol(), base.with_mtbf(mtbf));
    EXPECT_GE(opt.period, previous - 1e-9) << "M=" << mtbf;
    previous = opt.period;
  }
}

TEST_P(ProtocolScenarioProperty, RiskWindowCoversDowntimePlusRecovery) {
  const auto p = params();
  EXPECT_GE(risk_window(protocol(), p), p.downtime + p.recovery() - 1e-12);
}

TEST_P(ProtocolScenarioProperty, SuccessProbabilityWithinUnitInterval) {
  const auto p = params(600.0);
  for (double mission : {3600.0, 86400.0, 30.0 * 86400.0}) {
    const double s = success_probability(protocol(), p, mission);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_P(ProtocolScenarioProperty, EffectiveWasteAtLeastPlainWaste) {
  const auto p = params(1800.0);
  const auto eval = evaluate_with_restarts(protocol(), p, 1e5);
  if (!eval.feasible) return;
  const double plain = 1.0 - 1e5 / eval.makespan;
  EXPECT_GE(eval.effective_waste, plain - 1e-12);
}

TEST_P(ProtocolScenarioProperty, HierarchyCostsAtLeastLevelOne) {
  HierarchicalParams h;
  h.protocol = protocol();
  h.level1 = params(1800.0);
  h.global_ckpt = 300.0;
  h.global_recovery = 300.0;
  const auto eval = optimize_hierarchical(h);
  if (!eval.feasible) return;
  EXPECT_GE(eval.total_waste, eval.level1_waste - 1e-12);
  EXPECT_GE(eval.level2_period, eval.level1_period);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolScenarioProperty,
    ::testing::Combine(::testing::Values(Protocol::DoubleBlocking,
                                         Protocol::DoubleNbl,
                                         Protocol::DoubleBof,
                                         Protocol::Triple,
                                         Protocol::TripleBof),
                       ::testing::Values(0, 1),
                       ::testing::Values(0.1, 0.5, 1.0)));

// ------------------------------------------------- cross-protocol relations

TEST(CrossProtocolProperty, BlockingOnFailureShrinksRiskEverywhere) {
  for (const auto& scenario : paper_scenarios()) {
    for (double ratio : {0.0, 0.3, 0.7, 1.0}) {
      const auto p = scenario.at_phi_ratio(ratio).with_mtbf(3600.0);
      EXPECT_LE(risk_window(Protocol::DoubleBof, p),
                risk_window(Protocol::DoubleNbl, p) + 1e-12);
      EXPECT_LE(risk_window(Protocol::TripleBof, p),
                risk_window(Protocol::Triple, p) + 1e-12);
    }
  }
}

TEST(CrossProtocolProperty, TripleFaultFreeWinsExactlyWhenPhiBelowDelta) {
  // WASTE_ff: 2 phi/P (triple) vs (delta + phi)/P (double): the triple is
  // cheaper per unit period iff phi < delta.
  for (const auto& scenario : paper_scenarios()) {
    const auto& base = scenario.params;
    const double delta = base.local_ckpt;
    for (double phi : {delta / 2.0, delta, 2.0 * delta}) {
      if (phi > base.remote_blocking) continue;
      auto p = base.with_overhead(phi).with_mtbf(7 * 3600.0);
      const double period =
          std::max(min_period(Protocol::Triple, p),
                   min_period(Protocol::DoubleNbl, p)) *
          2.0;
      const double tri = waste_fault_free(Protocol::Triple, p, period);
      const double dbl = waste_fault_free(Protocol::DoubleNbl, p, period);
      if (phi < delta) {
        EXPECT_LT(tri, dbl);
      } else if (phi > delta) {
        EXPECT_GT(tri, dbl);
      } else {
        EXPECT_NEAR(tri, dbl, 1e-12);
      }
    }
  }
}

TEST(CrossProtocolProperty, FatalRateOrderingMatchesRiskWindows) {
  const auto p = base_scenario().at_phi_ratio(0.5).with_mtbf(120.0);
  EXPECT_LT(fatal_failure_rate(Protocol::DoubleBof, p),
            fatal_failure_rate(Protocol::DoubleNbl, p));
  EXPECT_LT(fatal_failure_rate(Protocol::Triple, p),
            fatal_failure_rate(Protocol::DoubleBof, p));
  EXPECT_LT(fatal_failure_rate(Protocol::TripleBof, p),
            fatal_failure_rate(Protocol::Triple, p));
}

TEST(CrossProtocolProperty, BlockingProtocolIsNblAtFullOverheadPoint) {
  // At phi = R the non-blocking machinery degenerates: theta = R and the
  // waste of DoubleNbl/DoubleBof/DoubleBlocking nearly coincide (they
  // differ only through R - phi = 0 terms).
  for (const auto& scenario : paper_scenarios()) {
    const auto p = scenario.at_phi_ratio(1.0).with_mtbf(7 * 3600.0);
    const double period = min_period(Protocol::DoubleNbl, p) * 5.0;
    const double nbl = waste(Protocol::DoubleNbl, p, period);
    const double bof = waste(Protocol::DoubleBof, p, period);
    const double blocking = waste(Protocol::DoubleBlocking, p, period);
    EXPECT_NEAR(nbl, blocking, 1e-12) << scenario.name;
    EXPECT_NEAR(bof, blocking, 1e-12) << scenario.name;
  }
}

TEST(CrossProtocolProperty, MeanTimeBetweenFatalExceedsPlatformMtbf) {
  for (const auto& scenario : paper_scenarios()) {
    for (double mtbf : {120.0, 3600.0}) {
      const auto p = scenario.at_phi_ratio(0.5).with_mtbf(mtbf);
      for (auto protocol : kAllProtocols) {
        EXPECT_GT(mean_time_between_fatal(protocol, p), mtbf)
            << protocol_name(protocol);
      }
    }
  }
}

}  // namespace
