// Cross-cutting property tests: invariants that must hold for every
// protocol, scenario and parameter combination -- the guard rails under
// the individual formula tests.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "model/model_api.hpp"
#include "proptest.hpp"

namespace {

using namespace dckpt::model;

class ProtocolScenarioProperty
    : public ::testing::TestWithParam<std::tuple<Protocol, int, double>> {
 protected:
  Protocol protocol() const { return std::get<0>(GetParam()); }
  Parameters params(double mtbf = 7 * 3600.0) const {
    return paper_scenarios()[std::get<1>(GetParam())]
        .at_phi_ratio(std::get<2>(GetParam()))
        .with_mtbf(mtbf);
  }
};

TEST_P(ProtocolScenarioProperty, PeriodPartsSumToPeriod) {
  const auto p = params();
  for (double scale : {1.0, 2.0, 7.5}) {
    const double period = min_period(protocol(), p) * scale;
    const auto parts = period_parts(protocol(), p, period);
    EXPECT_NEAR(parts.part1 + parts.part2 + parts.part3, period, 1e-9);
    EXPECT_GE(parts.part3, -1e-12);
  }
}

TEST_P(ProtocolScenarioProperty, SigmaZeroAtMinimumPeriod) {
  const auto p = params();
  const auto parts =
      period_parts(protocol(), p, min_period(protocol(), p));
  EXPECT_NEAR(parts.part3, 0.0, 1e-9);
}

TEST_P(ProtocolScenarioProperty, WorkPerPeriodBelowPeriod) {
  const auto p = params();
  const double period = min_period(protocol(), p) * 3.0;
  const double work = work_per_period(protocol(), p, period);
  EXPECT_LE(work, period);
  EXPECT_GE(work, 0.0);
  // Consistency with the fault-free waste: W = P (1 - WASTE_ff).
  EXPECT_NEAR(work,
              period * (1.0 - waste_fault_free(protocol(), p, period)),
              1e-9);
}

TEST_P(ProtocolScenarioProperty, FailureCostIncreasesWithPeriod) {
  const auto p = params();
  const double lo = min_period(protocol(), p);
  double previous = -1.0;
  for (double scale : {1.0, 1.5, 2.5, 5.0, 10.0}) {
    const double f = expected_failure_cost(protocol(), p, lo * scale);
    EXPECT_GT(f, previous);
    previous = f;
  }
}

TEST_P(ProtocolScenarioProperty, FaultFreeWasteDecreasesWithPeriod) {
  const auto p = params();
  const double lo = min_period(protocol(), p);
  double previous = 2.0;
  for (double scale : {1.0, 2.0, 4.0, 8.0}) {
    const double ff = waste_fault_free(protocol(), p, lo * scale);
    EXPECT_LE(ff, previous + 1e-12);
    EXPECT_GE(ff, 0.0);
    EXPECT_LE(ff, 1.0);
    previous = ff;
  }
}

TEST_P(ProtocolScenarioProperty, WasteDecreasesWithMtbf) {
  const auto base = params();
  const double period = min_period(protocol(), base) * 3.0;
  double previous = 1.5;
  for (double mtbf : {300.0, 1800.0, 7200.0, 86400.0}) {
    const double w = waste(protocol(), base.with_mtbf(mtbf), period);
    EXPECT_LE(w, previous + 1e-12) << "M=" << mtbf;
    previous = w;
  }
}

TEST_P(ProtocolScenarioProperty, OptimalWasteDecreasesWithMtbf) {
  const auto base = params();
  double previous = 1.5;
  for (double mtbf : {600.0, 3600.0, 6.0 * 3600.0, 86400.0}) {
    const double w =
        waste_at_optimal_period(protocol(), base.with_mtbf(mtbf));
    EXPECT_LE(w, previous + 1e-12) << "M=" << mtbf;
    previous = w;
  }
}

TEST_P(ProtocolScenarioProperty, OptimalPeriodGrowsWithMtbf) {
  const auto base = params();
  double previous = 0.0;
  for (double mtbf : {1800.0, 7200.0, 12.0 * 3600.0, 86400.0}) {
    const auto opt =
        optimal_period_closed_form(protocol(), base.with_mtbf(mtbf));
    EXPECT_GE(opt.period, previous - 1e-9) << "M=" << mtbf;
    previous = opt.period;
  }
}

TEST_P(ProtocolScenarioProperty, RiskWindowCoversDowntimePlusRecovery) {
  const auto p = params();
  EXPECT_GE(risk_window(protocol(), p), p.downtime + p.recovery() - 1e-12);
}

TEST_P(ProtocolScenarioProperty, SuccessProbabilityWithinUnitInterval) {
  const auto p = params(600.0);
  for (double mission : {3600.0, 86400.0, 30.0 * 86400.0}) {
    const double s = success_probability(protocol(), p, mission);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_P(ProtocolScenarioProperty, EffectiveWasteAtLeastPlainWaste) {
  const auto p = params(1800.0);
  const auto eval = evaluate_with_restarts(protocol(), p, 1e5);
  if (!eval.feasible) return;
  const double plain = 1.0 - 1e5 / eval.makespan;
  EXPECT_GE(eval.effective_waste, plain - 1e-12);
}

TEST_P(ProtocolScenarioProperty, HierarchyCostsAtLeastLevelOne) {
  HierarchicalParams h;
  h.protocol = protocol();
  h.level1 = params(1800.0);
  h.global_ckpt = 300.0;
  h.global_recovery = 300.0;
  const auto eval = optimize_hierarchical(h);
  if (!eval.feasible) return;
  EXPECT_GE(eval.total_waste, eval.level1_waste - 1e-12);
  EXPECT_GE(eval.level2_period, eval.level1_period);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolScenarioProperty,
    ::testing::Combine(::testing::Values(Protocol::DoubleBlocking,
                                         Protocol::DoubleNbl,
                                         Protocol::DoubleBof,
                                         Protocol::Triple,
                                         Protocol::TripleBof),
                       ::testing::Values(0, 1),
                       ::testing::Values(0.1, 0.5, 1.0)));

// ------------------------------------------------- cross-protocol relations

TEST(CrossProtocolProperty, BlockingOnFailureShrinksRiskEverywhere) {
  for (const auto& scenario : paper_scenarios()) {
    for (double ratio : {0.0, 0.3, 0.7, 1.0}) {
      const auto p = scenario.at_phi_ratio(ratio).with_mtbf(3600.0);
      EXPECT_LE(risk_window(Protocol::DoubleBof, p),
                risk_window(Protocol::DoubleNbl, p) + 1e-12);
      EXPECT_LE(risk_window(Protocol::TripleBof, p),
                risk_window(Protocol::Triple, p) + 1e-12);
    }
  }
}

TEST(CrossProtocolProperty, TripleFaultFreeWinsExactlyWhenPhiBelowDelta) {
  // WASTE_ff: 2 phi/P (triple) vs (delta + phi)/P (double): the triple is
  // cheaper per unit period iff phi < delta.
  for (const auto& scenario : paper_scenarios()) {
    const auto& base = scenario.params;
    const double delta = base.local_ckpt;
    for (double phi : {delta / 2.0, delta, 2.0 * delta}) {
      if (phi > base.remote_blocking) continue;
      auto p = base.with_overhead(phi).with_mtbf(7 * 3600.0);
      const double period =
          std::max(min_period(Protocol::Triple, p),
                   min_period(Protocol::DoubleNbl, p)) *
          2.0;
      const double tri = waste_fault_free(Protocol::Triple, p, period);
      const double dbl = waste_fault_free(Protocol::DoubleNbl, p, period);
      if (phi < delta) {
        EXPECT_LT(tri, dbl);
      } else if (phi > delta) {
        EXPECT_GT(tri, dbl);
      } else {
        EXPECT_NEAR(tri, dbl, 1e-12);
      }
    }
  }
}

TEST(CrossProtocolProperty, FatalRateOrderingMatchesRiskWindows) {
  const auto p = base_scenario().at_phi_ratio(0.5).with_mtbf(120.0);
  EXPECT_LT(fatal_failure_rate(Protocol::DoubleBof, p),
            fatal_failure_rate(Protocol::DoubleNbl, p));
  EXPECT_LT(fatal_failure_rate(Protocol::Triple, p),
            fatal_failure_rate(Protocol::DoubleBof, p));
  EXPECT_LT(fatal_failure_rate(Protocol::TripleBof, p),
            fatal_failure_rate(Protocol::Triple, p));
}

TEST(CrossProtocolProperty, BlockingProtocolIsNblAtFullOverheadPoint) {
  // At phi = R the non-blocking machinery degenerates: theta = R and the
  // waste of DoubleNbl/DoubleBof/DoubleBlocking nearly coincide (they
  // differ only through R - phi = 0 terms).
  for (const auto& scenario : paper_scenarios()) {
    const auto p = scenario.at_phi_ratio(1.0).with_mtbf(7 * 3600.0);
    const double period = min_period(Protocol::DoubleNbl, p) * 5.0;
    const double nbl = waste(Protocol::DoubleNbl, p, period);
    const double bof = waste(Protocol::DoubleBof, p, period);
    const double blocking = waste(Protocol::DoubleBlocking, p, period);
    EXPECT_NEAR(nbl, blocking, 1e-12) << scenario.name;
    EXPECT_NEAR(bof, blocking, 1e-12) << scenario.name;
  }
}

TEST(CrossProtocolProperty, MeanTimeBetweenFatalExceedsPlatformMtbf) {
  for (const auto& scenario : paper_scenarios()) {
    for (double mtbf : {120.0, 3600.0}) {
      const auto p = scenario.at_phi_ratio(0.5).with_mtbf(mtbf);
      for (auto protocol : kAllProtocols) {
        EXPECT_GT(mean_time_between_fatal(protocol, p), mtbf)
            << protocol_name(protocol);
      }
    }
  }
}

// ------------------------------- randomized properties (proptest.hpp)
//
// The scenario-grid tests above pin the paper's configurations; these
// forall properties draw whole random platforms (costs log-uniform across
// decades, phi anywhere in [0, R], up to 10^5 nodes) so the closed forms
// hold on the entire validated Parameters domain, not just the grid.

struct ModelCase {
  Protocol protocol = Protocol::DoubleNbl;
  Parameters params;
};

ModelCase random_model_case(proptest::Gen& gen) {
  ModelCase c;
  c.protocol = gen.element(std::vector<Protocol>(kAllProtocols.begin(),
                                                 kAllProtocols.end()));
  c.params.downtime = gen.log_uniform(1.0, 600.0);
  c.params.local_ckpt = gen.log_uniform(0.1, 300.0);
  c.params.remote_blocking = gen.log_uniform(10.0, 1800.0);
  c.params.alpha = gen.uniform(1.0, 40.0);
  c.params.overhead = gen.uniform(0.0, 1.0) * c.params.remote_blocking;
  c.params.nodes = gen.integer(2, 100000);
  c.params.mtbf = gen.log_uniform(600.0, 7.0 * 86400.0);
  c.params.validate();  // every draw must be a valid platform
  return c;
}

std::string show_model_case(const ModelCase& c) {
  return std::string(protocol_name(c.protocol)) + " " + c.params.describe();
}

TEST(ModelRandomProperty, WasteIsAlwaysAProbability) {
  proptest::ForallConfig config;
  config.iterations = 300;
  proptest::forall<ModelCase>(
      config, random_model_case,
      [](const ModelCase& c) -> std::optional<std::string> {
        for (double scale : {1.0, 1.7, 4.0, 20.0}) {
          const double period = min_period(c.protocol, c.params) * scale;
          const double w = waste(c.protocol, c.params, period);
          if (!(w >= 0.0 && w <= 1.0)) {
            return "waste(" + std::to_string(period) +
                   ") = " + std::to_string(w) + " outside [0, 1]";
          }
        }
        return std::nullopt;
      },
      nullptr, show_model_case);
}

TEST(ModelRandomProperty, NumericOptimumIsALocalMinimum) {
  proptest::ForallConfig config;
  config.iterations = 200;
  proptest::forall<ModelCase>(
      config, random_model_case,
      [](const ModelCase& c) -> std::optional<std::string> {
        const auto opt = optimal_period_numeric(c.protocol, c.params);
        if (!opt.feasible) return std::nullopt;  // waste pinned at 1
        // Brent terminates within a relative bracket; allow its tolerance
        // in the comparison and probe both sides (right only if clamped to
        // min_period, where the left neighbour is inadmissible).
        const double eps = std::max(opt.period * 1e-3, 1e-6);
        const double here = waste(c.protocol, c.params, opt.period);
        const double right = waste(c.protocol, c.params, opt.period + eps);
        if (here > right + 1e-9) {
          return "waste rises moving right of the numeric optimum: " +
                 std::to_string(here) + " > " + std::to_string(right);
        }
        if (!opt.clamped &&
            opt.period - eps > min_period(c.protocol, c.params)) {
          const double left = waste(c.protocol, c.params, opt.period - eps);
          if (here > left + 1e-9) {
            return "waste rises moving left of the numeric optimum: " +
                   std::to_string(here) + " > " + std::to_string(left);
          }
        }
        return std::nullopt;
      },
      nullptr, show_model_case);
}

TEST(ModelRandomProperty, ClosedFormTracksTheNumericOptimum) {
  // The closed forms are first-order approximations, so their *waste* must
  // sit just above the numeric minimum: never below (the numeric optimum
  // is the true minimum, up to solver tolerance) and within a few points
  // of waste on the whole random domain. The 0.02 band is empirical --
  // the worst observed gap across these draws is under 1 point; a
  // regression in either side trips it immediately.
  proptest::ForallConfig config;
  config.iterations = 200;
  proptest::forall<ModelCase>(
      config, random_model_case,
      [](const ModelCase& c) -> std::optional<std::string> {
        const auto closed = optimal_period_closed_form(c.protocol, c.params);
        const auto numeric = optimal_period_numeric(c.protocol, c.params);
        if (closed.feasible != numeric.feasible) {
          return std::string("feasibility disagrees: closed ") +
                 (closed.feasible ? "yes" : "no") + ", numeric " +
                 (numeric.feasible ? "yes" : "no");
        }
        if (!closed.feasible) return std::nullopt;
        if (closed.waste < numeric.waste - 1e-6) {
          return "closed form beats the numeric minimum: " +
                 std::to_string(closed.waste) + " < " +
                 std::to_string(numeric.waste);
        }
        if (closed.waste > numeric.waste + 0.02) {
          return "closed-form waste " + std::to_string(closed.waste) +
                 " more than 2 points above numeric " +
                 std::to_string(numeric.waste);
        }
        return std::nullopt;
      },
      nullptr, show_model_case);
}

TEST(ModelRandomProperty, OptimalWasteIsMonotoneInMtbf) {
  proptest::ForallConfig config;
  config.iterations = 150;
  proptest::forall<ModelCase>(
      config, random_model_case,
      [](const ModelCase& c) -> std::optional<std::string> {
        const auto here = optimal_period_numeric(c.protocol, c.params);
        const auto better = optimal_period_numeric(
            c.protocol, c.params.with_mtbf(c.params.mtbf * 2.0));
        if (better.waste > here.waste + 1e-9) {
          return "doubling MTBF raised the optimal waste: " +
                 std::to_string(here.waste) + " -> " +
                 std::to_string(better.waste);
        }
        return std::nullopt;
      },
      nullptr, show_model_case);
}

}  // namespace
