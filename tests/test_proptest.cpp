// Self-tests for the property-test harness in proptest.hpp.
#include "proptest.hpp"

#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace {

using proptest::ForallConfig;
using proptest::Gen;

TEST(Proptest, GeneratorsStayInRange) {
  Gen gen(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = gen.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
    const double lg = gen.log_uniform(1e-3, 1e6);
    EXPECT_GE(lg, 1e-3);
    EXPECT_LT(lg, 1e6 * (1.0 + 1e-12));
    const std::uint64_t n = gen.integer(5, 9);
    EXPECT_GE(n, 5u);
    EXPECT_LE(n, 9u);
  }
}

TEST(Proptest, GeneratorsAreSeedDeterministic) {
  Gen a(123), b(123), c(124);
  std::vector<double> draws_a, draws_b, draws_c;
  for (int i = 0; i < 100; ++i) {
    draws_a.push_back(a.uniform(0.0, 1.0));
    draws_b.push_back(b.uniform(0.0, 1.0));
    draws_c.push_back(c.uniform(0.0, 1.0));
  }
  EXPECT_EQ(draws_a, draws_b);
  EXPECT_NE(draws_a, draws_c);
}

TEST(Proptest, IterationSeedsAreDistinct) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.push_back(proptest::iteration_seed(7, i));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

TEST(Proptest, ForallPassesWhenPropertyHolds) {
  ForallConfig config;
  const bool ok = proptest::forall<double>(
      config, [](Gen& gen) { return gen.uniform(0.0, 1.0); },
      [](const double& value) -> std::optional<std::string> {
        if (value >= 0.0 && value < 1.0) return std::nullopt;
        return "out of range";
      });
  EXPECT_TRUE(ok);
}

// File-scope state: EXPECT_NONFATAL_FAILURE's statement may not reference
// locals of the enclosing function.
std::uint64_t g_shrunk = 0;
bool g_forall_ok = true;

void run_failing_forall() {
  // Property "value < 100" over draws up to 100000. Candidates are the
  // halving steps plus value - 1, so the greedy descent lands exactly on
  // the boundary counterexample 100.
  ForallConfig config;
  config.iterations = 50;
  config.max_shrink_rounds = 256;
  g_forall_ok = proptest::forall<std::uint64_t>(
      config, [](Gen& gen) { return gen.integer(0, 100000); },
      [](const std::uint64_t& value) -> std::optional<std::string> {
        if (value < 100) return std::nullopt;
        g_shrunk = value;  // last value the property saw failing
        return "value >= 100";
      },
      [](const std::uint64_t& value) {
        auto candidates = proptest::halve_toward(value, std::uint64_t{0});
        if (value > 0) candidates.push_back(value - 1);
        return candidates;
      },
      [](const std::uint64_t& value) { return std::to_string(value); });
}

TEST(Proptest, ForallReportsAndShrinksFailures) {
  EXPECT_NONFATAL_FAILURE(run_failing_forall(),
                          "property failed at iteration");
  EXPECT_FALSE(g_forall_ok);
  EXPECT_EQ(g_shrunk, 100u);  // minimal failing value
}

TEST(Proptest, HalveTowardConverges) {
  // Iterating "first candidate that still fails" over halve_toward alone
  // terminates within ~log2 rounds in the half-open band [100, 200).
  std::uint64_t value = 1u << 30;
  int rounds = 0;
  while (true) {
    const auto candidates = proptest::halve_toward(value, std::uint64_t{0});
    std::uint64_t next = value;
    for (const std::uint64_t candidate : candidates) {
      if (candidate >= 100) {  // "still fails"
        next = candidate;
        break;
      }
    }
    if (next == value) break;
    value = next;
    ++rounds;
  }
  EXPECT_GE(value, 100u);
  EXPECT_LT(value, 200u);
  EXPECT_LE(rounds, 32);
}

}  // namespace
