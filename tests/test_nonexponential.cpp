// Unit and property tests for the clustered-failure (Weibull-aware) waste
// model in model/nonexponential.hpp: the renewal-function solver, the
// correction factors, the exact k = 1 reduction to the exponential closed
// forms, and monotone convergence toward the exponential model as k -> 1.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "model/model_api.hpp"
#include "proptest.hpp"

namespace {

using namespace dckpt::model;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The probe configuration used throughout: the base scenario at phi = 1,
/// M = 2000 s, 12 nodes (per-node mean 24000 s), at the closed-form optimal
/// period. Matches the SimVsModelTest Weibull scenarios.
struct Probe {
  Parameters params;
  double period = 0.0;
  double horizon = 0.0;  // expected makespan under the exponential model
};

Probe probe_for(Protocol protocol) {
  Probe probe;
  probe.params = base_scenario().params.with_overhead(1.0).with_mtbf(2000.0);
  probe.params.nodes = 12;
  probe.period = optimal_period_closed_form(protocol, probe.params).period;
  probe.horizon =
      expected_makespan(protocol, probe.params, probe.period, 50000.0);
  return probe;
}

TEST(WeibullCv2Test, KnownValues) {
  // c^2(k) = Gamma(1 + 2/k) / Gamma(1 + 1/k)^2 - 1.
  // k = 0.5: Gamma(5)/Gamma(3)^2 - 1 = 24/4 - 1 = 5 exactly.
  EXPECT_NEAR(weibull_cv2(0.5), 5.0, 1e-12);
  // k = 1 is the exponential: unit coefficient of variation.
  EXPECT_DOUBLE_EQ(weibull_cv2(1.0), 1.0);
  // k = 2 (Rayleigh): 4/pi - 1.
  EXPECT_NEAR(weibull_cv2(2.0), 4.0 / M_PI - 1.0, 1e-12);
  // Monotone decreasing in k: more shape, less burstiness.
  EXPECT_GT(weibull_cv2(0.7), weibull_cv2(1.0));
  EXPECT_LT(weibull_cv2(1.5), weibull_cv2(1.0));
}

TEST(WeibullCv2Test, RejectsBadShape) {
  EXPECT_THROW(weibull_cv2(0.0), std::invalid_argument);
  EXPECT_THROW(weibull_cv2(-1.0), std::invalid_argument);
  EXPECT_THROW(weibull_cv2(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(RenewalFunctionTest, ExponentialIsExactlyLinear) {
  // Poisson arrivals: m(t) = t / mean, no transient at all.
  EXPECT_DOUBLE_EQ(weibull_renewal_function(1.0, 100.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(weibull_renewal_function(1.0, 100.0, 250.0), 2.5);
  EXPECT_DOUBLE_EQ(weibull_renewal_function(1.0, 100.0, 1e6), 1e4);
}

TEST(RenewalFunctionTest, MonotoneInTime) {
  double prev = -1.0;
  for (double t : {0.0, 10.0, 50.0, 100.0, 400.0, 2000.0, 10000.0}) {
    const double m = weibull_renewal_function(0.7, 100.0, t);
    EXPECT_GE(m, prev) << "t=" << t;
    prev = m;
  }
}

TEST(RenewalFunctionTest, SmithAsymptote) {
  // Smith's key renewal theorem: m(t) -> t/mu + (c^2 - 1)/2 as t -> inf.
  // The solver integrates the transient on [0, 50 mu] and extends linearly,
  // so by t = 100 mu the excess must match (c^2 - 1)/2. Tolerances reflect
  // the trapezoid grid bias measured at each shape (largest at k = 0.5,
  // where the density has an integrable singularity at 0).
  struct Case {
    double shape;
    double tol;
  };
  for (const auto& c : {Case{0.5, 0.08}, Case{0.7, 0.02}, Case{2.0, 0.01}}) {
    const double mean = 100.0;
    const double t = 100.0 * mean;
    const double excess = weibull_renewal_function(c.shape, mean, t) - t / mean;
    EXPECT_NEAR(excess, (weibull_cv2(c.shape) - 1.0) / 2.0, c.tol)
        << "shape=" << c.shape;
  }
}

TEST(RenewalFunctionTest, StartupExcessSign) {
  // Decreasing hazard (k < 1) front-loads failures: more renewals than the
  // stationary rate early on. Increasing hazard (k > 1) delays the first
  // failure: fewer renewals early on.
  const double mean = 100.0;
  for (double t : {50.0, 100.0, 300.0}) {
    EXPECT_GT(weibull_renewal_function(0.7, mean, t), t / mean) << t;
    EXPECT_LT(weibull_renewal_function(1.5, mean, t), t / mean) << t;
  }
}

TEST(RenewalFunctionTest, RejectsBadInputs) {
  EXPECT_THROW(weibull_renewal_function(0.0, 100.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(weibull_renewal_function(1.0, 0.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(weibull_renewal_function(1.0, 100.0, -1.0),
               std::invalid_argument);
  EXPECT_THROW(weibull_renewal_function(1.0, 100.0, kInf),
               std::invalid_argument);
  EXPECT_THROW(weibull_renewal_function(1.0, 100.0, 10.0, /*grid=*/4),
               std::invalid_argument);
}

TEST(WeibullFailuresTest, ValidateRejectsBadFields) {
  EXPECT_THROW((WeibullFailures{0.0, 100.0}.validate()),
               std::invalid_argument);
  EXPECT_THROW((WeibullFailures{-0.5, 100.0}.validate()),
               std::invalid_argument);
  EXPECT_THROW((WeibullFailures{1.0, 0.0}.validate()), std::invalid_argument);
  EXPECT_THROW((WeibullFailures{1.0, -5.0}.validate()),
               std::invalid_argument);
  EXPECT_THROW(
      (WeibullFailures{1.0, std::numeric_limits<double>::quiet_NaN()}
           .validate()),
      std::invalid_argument);
  EXPECT_NO_THROW((WeibullFailures{0.7, 1e5}.validate()));
  EXPECT_NO_THROW((WeibullFailures{1.0, kInf}.validate()));
}

TEST(ClusterCorrectionTest, IdentityAtShapeOneAndInfiniteHorizon) {
  const auto probe = probe_for(Protocol::DoubleNbl);
  for (const auto& failures :
       {WeibullFailures{1.0, probe.horizon}, WeibullFailures{0.7, kInf},
        WeibullFailures{1.6, kInf}}) {
    const auto corr = cluster_correction(probe.params, failures);
    EXPECT_DOUBLE_EQ(corr.rate_factor, 1.0);
    EXPECT_DOUBLE_EQ(corr.excess_fraction, 0.0);
    EXPECT_DOUBLE_EQ(corr.loss_coefficient, 0.5);
  }
}

TEST(ClusterCorrectionTest, DirectionBelowAndAboveOne) {
  const auto probe = probe_for(Protocol::DoubleNbl);
  // k < 1: startup burst -> more failures than exponential over the mission,
  // and each strike lands earlier in the period (loss coefficient < 1/2).
  const auto below =
      cluster_correction(probe.params, WeibullFailures{0.7, probe.horizon});
  EXPECT_GT(below.rate_factor, 1.0);
  EXPECT_GT(below.excess_fraction, 0.0);
  EXPECT_LT(below.loss_coefficient, 0.5);
  // Measured window for this configuration (mu = 24000 s, horizon ~ 2.2 mu):
  // gamma ~ 1.22. Guard against solver regressions.
  EXPECT_NEAR(below.rate_factor, 1.22, 0.07);
  // k > 1: delayed first failures -> fewer failures. The excess fraction
  // goes negative while the conditional strike position k/(k+1) sits above
  // 1/2, so the blended loss coefficient again lands below 1/2: the failure
  // deficit is taken out of late-period strikes.
  const auto above =
      cluster_correction(probe.params, WeibullFailures{1.5, probe.horizon});
  EXPECT_LT(above.rate_factor, 1.0);
  EXPECT_LT(above.excess_fraction, 0.0);
  EXPECT_LT(above.loss_coefficient, 0.5);
}

TEST(NonexponentialWasteTest, ShapeOneIsBitIdenticalToExponential) {
  // The k = 1 fast path and the identity ClusterCorrection must reproduce
  // the exponential closed forms exactly (==, not NEAR), for every protocol
  // and across the period range.
  for (auto protocol : kAllProtocols) {
    const auto probe = probe_for(protocol);
    const double lo = min_period(protocol, probe.params);
    for (double factor : {1.0, 1.5, 3.0, 10.0, 50.0}) {
      const double period = lo * factor;
      const double expected = waste(protocol, probe.params, period);
      EXPECT_EQ(waste(protocol, probe.params, period,
                      WeibullFailures{1.0, probe.horizon}),
                expected)
          << protocol_name(protocol) << " factor=" << factor;
      EXPECT_EQ(waste(protocol, probe.params, period, ClusterCorrection{}),
                expected)
          << protocol_name(protocol) << " factor=" << factor;
      EXPECT_EQ(waste_failure(protocol, probe.params, period,
                              WeibullFailures{1.0, probe.horizon}),
                waste_failure(protocol, probe.params, period))
          << protocol_name(protocol) << " factor=" << factor;
      EXPECT_EQ(expected_failure_cost(protocol, probe.params, period,
                                      ClusterCorrection{}),
                expected_failure_cost(protocol, probe.params, period))
          << protocol_name(protocol) << " factor=" << factor;
    }
  }
}

TEST(NonexponentialWasteTest, CorrectionShiftsLossTermExactly) {
  // With a hand-built correction, the corrected failure cost must be the
  // exponential cost plus (eta - 1/2) * P -- the documented first-order
  // decomposition.
  const auto probe = probe_for(Protocol::DoubleNbl);
  ClusterCorrection corr;
  corr.rate_factor = 1.2;
  corr.excess_fraction = 0.2 / 1.2;
  corr.loss_coefficient = 0.48;
  const double base =
      expected_failure_cost(Protocol::DoubleNbl, probe.params, probe.period);
  EXPECT_DOUBLE_EQ(expected_failure_cost(Protocol::DoubleNbl, probe.params,
                                         probe.period, corr),
                   base + (0.48 - 0.5) * probe.period);
  EXPECT_DOUBLE_EQ(
      waste_failure(Protocol::DoubleNbl, probe.params, probe.period, corr),
      1.2 * (base + (0.48 - 0.5) * probe.period) / probe.params.mtbf);
}

TEST(NonexponentialWasteTest, WasteFailureNeverNegative) {
  // An extreme k > 1 correction can push the corrected cost negative at
  // tiny periods; the waste must clamp at zero rather than go negative.
  const auto probe = probe_for(Protocol::DoubleNbl);
  ClusterCorrection corr;
  corr.rate_factor = 0.05;
  corr.excess_fraction = (0.05 - 1.0) / 0.05;
  corr.loss_coefficient = 0.5 * (1.0 - corr.excess_fraction) +
                          corr.excess_fraction * 2.0 / 3.0;
  const double lo = min_period(Protocol::DoubleNbl, probe.params);
  EXPECT_GE(waste_failure(Protocol::DoubleNbl, probe.params, lo, corr), 0.0);
  EXPECT_GE(waste(Protocol::DoubleNbl, probe.params, lo, corr), 0.0);
}

TEST(NonexponentialWasteTest, DirectionMatchesClustering) {
  // Sub-exponential shapes cluster failures and must raise the predicted
  // waste; super-exponential shapes regularize arrivals and must lower it.
  for (auto protocol : {Protocol::DoubleNbl, Protocol::Triple}) {
    const auto probe = probe_for(protocol);
    const double exp_waste = waste(protocol, probe.params, probe.period);
    EXPECT_GT(waste(protocol, probe.params, probe.period,
                    WeibullFailures{0.7, probe.horizon}),
              exp_waste)
        << protocol_name(protocol);
    EXPECT_LT(waste(protocol, probe.params, probe.period,
                    WeibullFailures{1.5, probe.horizon}),
              exp_waste)
        << protocol_name(protocol);
  }
}

TEST(NonexponentialWasteTest, MonotoneConvergenceToExponentialModel) {
  // As k -> 1 from either side, the clustered model must converge to the
  // exponential closed form, and the deviation must shrink monotonically
  // along a ladder of shapes approaching 1. This pins down both the limit
  // and the absence of solver noise near the exponential point.
  for (auto protocol : {Protocol::DoubleNbl, Protocol::Triple}) {
    const auto probe = probe_for(protocol);
    const double exp_waste = waste(protocol, probe.params, probe.period);
    const auto deviation = [&](double shape) {
      return std::fabs(waste(protocol, probe.params, probe.period,
                             WeibullFailures{shape, probe.horizon}) -
                       exp_waste);
    };
    const double below[] = {0.5, 0.65, 0.8, 0.95, 0.99};
    for (std::size_t i = 1; i < std::size(below); ++i) {
      EXPECT_LT(deviation(below[i]), deviation(below[i - 1]))
          << protocol_name(protocol) << " k=" << below[i];
    }
    const double above[] = {2.0, 1.7, 1.4, 1.15, 1.01};
    for (std::size_t i = 1; i < std::size(above); ++i) {
      EXPECT_LT(deviation(above[i]), deviation(above[i - 1]))
          << protocol_name(protocol) << " k=" << above[i];
    }
    // The ladder terminates in the exact limit.
    EXPECT_LT(deviation(0.99), 1e-3 * (1.0 + exp_waste));
    EXPECT_LT(deviation(1.01), 1e-3 * (1.0 + exp_waste));
    EXPECT_DOUBLE_EQ(deviation(1.0), 0.0);
  }
}

TEST(NonexponentialWasteTest, PropertyWasteMonotoneInShape) {
  // Randomized extension of the direction tests: at the closed-form optimal
  // period and the mission's expected horizon, the corrected waste is
  // nonincreasing in the shape parameter (more burstiness never helps).
  proptest::ForallConfig config;
  config.seed = 0x4e07;
  config.iterations = 48;
  struct Draw {
    Protocol protocol;
    double mtbf;
    double k_lo;
    double k_hi;
  };
  EXPECT_TRUE(proptest::forall<Draw>(
      config,
      [](proptest::Gen& gen) {
        Draw draw;
        draw.protocol = kAllProtocols[static_cast<std::size_t>(
            gen.integer(0, kAllProtocols.size() - 1))];
        draw.mtbf = gen.log_uniform(900.0, 14400.0);
        draw.k_lo = gen.uniform(0.45, 2.5);
        draw.k_hi = gen.uniform(0.45, 2.5);
        if (draw.k_lo > draw.k_hi) std::swap(draw.k_lo, draw.k_hi);
        return draw;
      },
      [](const Draw& draw) -> std::optional<std::string> {
        auto params =
            base_scenario().params.with_overhead(1.0).with_mtbf(draw.mtbf);
        params.nodes = 12;
        const auto opt = optimal_period_closed_form(draw.protocol, params);
        if (!opt.feasible) return std::nullopt;  // vacuously holds
        const double horizon = expected_makespan(draw.protocol, params,
                                                 opt.period, 25.0 * draw.mtbf);
        if (!std::isfinite(horizon)) return std::nullopt;
        const double w_lo = waste(draw.protocol, params, opt.period,
                                  WeibullFailures{draw.k_lo, horizon});
        const double w_hi = waste(draw.protocol, params, opt.period,
                                  WeibullFailures{draw.k_hi, horizon});
        if (w_lo + 1e-12 < w_hi) {
          return "waste increased with shape: w(" + std::to_string(draw.k_lo) +
                 ")=" + std::to_string(w_lo) + " < w(" +
                 std::to_string(draw.k_hi) + ")=" + std::to_string(w_hi);
        }
        return std::nullopt;
      },
      /*shrink=*/nullptr,
      /*show=*/[](const Draw& draw) {
        return std::string(protocol_name(draw.protocol)) +
               " mtbf=" + std::to_string(draw.mtbf) +
               " k_lo=" + std::to_string(draw.k_lo) +
               " k_hi=" + std::to_string(draw.k_hi);
      }));
}

TEST(NonexponentialOptimumTest, ShapeOneMatchesExponentialNumeric) {
  for (auto protocol : {Protocol::DoubleNbl, Protocol::TripleBof}) {
    const auto probe = probe_for(protocol);
    const auto exp_opt = optimal_period_numeric(protocol, probe.params);
    const auto weib_opt = optimal_period_numeric(
        protocol, probe.params, WeibullFailures{1.0, probe.horizon});
    ASSERT_TRUE(weib_opt.feasible) << protocol_name(protocol);
    EXPECT_EQ(weib_opt.period, exp_opt.period) << protocol_name(protocol);
    EXPECT_EQ(weib_opt.waste, exp_opt.waste) << protocol_name(protocol);
  }
}

TEST(NonexponentialOptimumTest, ClusteredOptimumBeatsExponentialPeriod) {
  // The corrected objective must find a period at least as good (under the
  // corrected model) as re-using the exponential optimum, and for k < 1 the
  // optimum shifts to shorter periods: clustered failures reward more
  // frequent checkpoints.
  const auto probe = probe_for(Protocol::DoubleNbl);
  const WeibullFailures failures{0.7, probe.horizon};
  const auto opt =
      optimal_period_numeric(Protocol::DoubleNbl, probe.params, failures);
  ASSERT_TRUE(opt.feasible);
  EXPECT_GE(opt.period,
            min_period(Protocol::DoubleNbl, probe.params) - 1e-9);
  const double at_exp_period =
      waste(Protocol::DoubleNbl, probe.params, probe.period, failures);
  EXPECT_LE(opt.waste, at_exp_period + 1e-9);
  EXPECT_LT(opt.period, probe.period);
}

}  // namespace
