#include "sim/risk_tracker.hpp"

#include <gtest/gtest.h>

namespace {

using dckpt::sim::RiskTracker;

TEST(RiskTrackerPairTest, BuddyFailureInsideWindowIsFatal) {
  RiskTracker tracker(8, 2);
  EXPECT_FALSE(tracker.on_failure(0, 100.0, 10.0));
  EXPECT_TRUE(tracker.on_failure(1, 105.0, 10.0));
}

TEST(RiskTrackerPairTest, BuddyFailureAfterExpiryIsSafe) {
  RiskTracker tracker(8, 2);
  EXPECT_FALSE(tracker.on_failure(0, 100.0, 10.0));
  EXPECT_FALSE(tracker.on_failure(1, 110.0, 10.0));  // window closed at 110
}

TEST(RiskTrackerPairTest, UnrelatedGroupIsSafe) {
  RiskTracker tracker(8, 2);
  EXPECT_FALSE(tracker.on_failure(0, 100.0, 10.0));
  EXPECT_FALSE(tracker.on_failure(2, 101.0, 10.0));  // different pair
  EXPECT_FALSE(tracker.on_failure(5, 102.0, 10.0));
}

TEST(RiskTrackerPairTest, SameNodeRepeatedFailureIsNotFatal) {
  RiskTracker tracker(4, 2);
  EXPECT_FALSE(tracker.on_failure(0, 100.0, 10.0));
  // The replacement of node 0 fails again: only node 0's data was at risk,
  // the buddy still holds every copy -- not fatal, window refreshed.
  EXPECT_FALSE(tracker.on_failure(0, 104.0, 10.0));
  // Buddy failing within the refreshed window is fatal.
  EXPECT_TRUE(tracker.on_failure(1, 113.0, 10.0));
}

TEST(RiskTrackerPairTest, WindowRefreshExtendsExposure) {
  RiskTracker tracker(4, 2);
  EXPECT_FALSE(tracker.on_failure(0, 100.0, 10.0));
  EXPECT_FALSE(tracker.on_failure(0, 109.0, 10.0));  // refresh to 119
  EXPECT_TRUE(tracker.on_failure(1, 115.0, 10.0));
}

TEST(RiskTrackerTripleTest, ThreeFailuresCascadeToFatal) {
  RiskTracker tracker(9, 3);
  EXPECT_FALSE(tracker.on_failure(3, 100.0, 20.0));  // group 1 member 0
  EXPECT_FALSE(tracker.on_failure(4, 105.0, 20.0));  // second member exposed
  EXPECT_TRUE(tracker.on_failure(5, 110.0, 20.0));   // last copy gone
}

TEST(RiskTrackerTripleTest, TwoFailuresAreSurvivable) {
  RiskTracker tracker(9, 3);
  EXPECT_FALSE(tracker.on_failure(0, 100.0, 20.0));
  EXPECT_FALSE(tracker.on_failure(1, 105.0, 20.0));
  // Third member fails after both windows expired: safe.
  EXPECT_FALSE(tracker.on_failure(2, 200.0, 20.0));
}

TEST(RiskTrackerTripleTest, StaggeredWindowsOnlyCountOpenOnes) {
  RiskTracker tracker(3, 3);
  EXPECT_FALSE(tracker.on_failure(0, 100.0, 10.0));  // open till 110
  EXPECT_FALSE(tracker.on_failure(1, 109.0, 10.0));  // open till 119
  // At t=112 node 0's window expired; only node 1 exposed -> not fatal.
  EXPECT_FALSE(tracker.on_failure(2, 112.0, 10.0));
}

TEST(RiskTrackerTripleTest, ThirdFailureOfSameMemberIsSafe) {
  RiskTracker tracker(3, 3);
  EXPECT_FALSE(tracker.on_failure(0, 100.0, 50.0));
  EXPECT_FALSE(tracker.on_failure(1, 101.0, 50.0));
  // Replacement of member 0 fails again: still one live member with data.
  EXPECT_FALSE(tracker.on_failure(0, 102.0, 50.0));
  // But the last member failing now is fatal.
  EXPECT_TRUE(tracker.on_failure(2, 103.0, 50.0));
}

TEST(RiskTrackerTest, OpenWindowAccounting) {
  RiskTracker tracker(8, 2);
  EXPECT_EQ(tracker.open_windows(0.0), 0u);
  tracker.on_failure(0, 100.0, 10.0);
  tracker.on_failure(2, 100.0, 10.0);
  EXPECT_EQ(tracker.open_windows(105.0), 2u);
  EXPECT_EQ(tracker.open_windows(111.0), 0u);
}

TEST(RiskTrackerTest, GroupMapping) {
  RiskTracker pairs(8, 2);
  EXPECT_EQ(pairs.group_of(0), 0u);
  EXPECT_EQ(pairs.group_of(1), 0u);
  EXPECT_EQ(pairs.group_of(7), 3u);
  RiskTracker triples(9, 3);
  EXPECT_EQ(triples.group_of(5), 1u);
  EXPECT_EQ(triples.group_of(6), 2u);
}

TEST(RiskTrackerTest, Validation) {
  EXPECT_THROW(RiskTracker(8, 4), std::invalid_argument);
  EXPECT_THROW(RiskTracker(7, 2), std::invalid_argument);
  EXPECT_THROW(RiskTracker(0, 2), std::invalid_argument);
  RiskTracker tracker(4, 2);
  EXPECT_THROW(tracker.on_failure(4, 0.0, 1.0), std::out_of_range);
}

}  // namespace
