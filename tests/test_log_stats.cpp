#include "sim/log_stats.hpp"

#include <gtest/gtest.h>

#include "sim/trace_injector.hpp"
#include "model/scenario.hpp"
#include "util/rng.hpp"

namespace {

using namespace dckpt::sim;
using dckpt::util::Exponential;
using dckpt::util::Weibull;
using dckpt::util::Xoshiro256ss;

std::vector<FailureEvent> synthetic_trace(const dckpt::util::Distribution& d,
                                          std::uint64_t nodes, double horizon,
                                          std::uint64_t seed = 1) {
  return generate_failure_trace(d, nodes, horizon, Xoshiro256ss(seed));
}

TEST(TraceGapsTest, FirstGapFromZero) {
  const auto gaps = trace_gaps({{2.0, 0}, {5.0, 1}, {5.5, 0}});
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_DOUBLE_EQ(gaps[0], 2.0);
  EXPECT_DOUBLE_EQ(gaps[1], 3.0);
  EXPECT_DOUBLE_EQ(gaps[2], 0.5);
}

TEST(TraceGapsTest, RejectsUnsorted) {
  EXPECT_THROW(trace_gaps({{2.0, 0}, {1.0, 0}}), std::invalid_argument);
}

TEST(AnalyzeTraceTest, BasicStatistics) {
  const auto stats = analyze_trace({{10.0, 0}, {20.0, 1}, {30.0, 0}});
  EXPECT_EQ(stats.events, 3u);
  EXPECT_DOUBLE_EQ(stats.span, 30.0);
  EXPECT_DOUBLE_EQ(stats.platform_mtbf, 10.0);
  EXPECT_EQ(stats.distinct_nodes, 2u);
  EXPECT_NEAR(stats.gap_cv, 0.0, 1e-12);  // perfectly regular gaps
}

TEST(AnalyzeTraceTest, RejectsTinyTraces) {
  EXPECT_THROW(analyze_trace({{1.0, 0}}), std::invalid_argument);
}

TEST(AnalyzeTraceTest, RecoversPlannedMtbf) {
  // 32 exponential nodes with node-mean 3200 -> platform MTBF 100.
  const auto trace =
      synthetic_trace(Exponential::from_mean(3200.0), 32, 50000.0);
  const auto stats = analyze_trace(trace);
  EXPECT_NEAR(stats.platform_mtbf, 100.0, 10.0);
  EXPECT_NEAR(stats.gap_cv, 1.0, 0.1);  // Poisson superposition
}

TEST(KsStatisticTest, PerfectFitIsSmall) {
  const auto trace =
      synthetic_trace(Exponential::from_mean(1000.0), 1, 500000.0);
  const auto gaps = trace_gaps(trace);
  const double ks =
      ks_statistic(gaps, Exponential::from_mean(
                             analyze_trace(trace).platform_mtbf));
  EXPECT_LT(ks, 0.05);
}

TEST(KsStatisticTest, WrongScaleIsLarge) {
  const auto trace =
      synthetic_trace(Exponential::from_mean(1000.0), 1, 500000.0);
  const double ks = ks_statistic(trace_gaps(trace),
                                 Exponential::from_mean(100.0));
  EXPECT_GT(ks, 0.3);
}

TEST(KsStatisticTest, RejectsEmpty) {
  EXPECT_THROW(ks_statistic({}, Exponential::from_mean(1.0)),
               std::invalid_argument);
}

TEST(FitExponentialTest, RecoversExponentialTrace) {
  const auto trace =
      synthetic_trace(Exponential::from_mean(800.0), 8, 200000.0);
  const auto fit = fit_exponential(trace);
  EXPECT_NEAR(fit.mean, 100.0, 10.0);
  EXPECT_LT(fit.ks_statistic, 0.05);
}

TEST(FitWeibullTest, RecoversShapeOnSingleStream) {
  // A single Weibull stream keeps its shape in the platform gaps.
  const auto trace =
      synthetic_trace(Weibull::from_mean(0.6, 500.0), 1, 1000000.0, 3);
  const auto fit = fit_weibull(trace);
  EXPECT_NEAR(fit.shape, 0.6, 0.08);
  EXPECT_NEAR(fit.mean, 500.0, 60.0);
  EXPECT_LT(fit.ks_statistic, 0.05);
}

TEST(FitWeibullTest, ExponentialTraceFitsShapeNearOne) {
  const auto trace =
      synthetic_trace(Exponential::from_mean(4000.0), 16, 400000.0, 5);
  const auto fit = fit_weibull(trace);
  EXPECT_NEAR(fit.shape, 1.0, 0.1);
}

TEST(FitComparisonTest, WeibullBeatsExponentialOnClusteredTrace) {
  // Sub-exponential single stream: Weibull must fit clearly better.
  const auto trace =
      synthetic_trace(Weibull::from_mean(0.5, 300.0), 1, 600000.0, 7);
  const auto exp_fit = fit_exponential(trace);
  const auto weib_fit = fit_weibull(trace);
  EXPECT_LT(weib_fit.ks_statistic, exp_fit.ks_statistic * 0.7);
}

TEST(FitComparisonTest, FittedMtbfPlugsIntoModel) {
  // End-to-end loop: trace -> fitted platform MTBF -> model parameters.
  const auto trace =
      synthetic_trace(Exponential::from_mean(32.0 * 900.0), 32, 300000.0, 9);
  const auto fit = fit_exponential(trace);
  auto params = dckpt::model::base_scenario().at_phi_ratio(0.25);
  params.mtbf = fit.mean;
  EXPECT_NO_THROW(params.validate());
  EXPECT_NEAR(params.mtbf, 900.0, 90.0);
}

}  // namespace
