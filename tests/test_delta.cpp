#include "ckpt/delta.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace {

using namespace dckpt::ckpt;

std::vector<std::byte> bytes_of(const std::string& text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

TEST(MakeDeltaTest, UntouchedStoreProducesEmptyDelta) {
  PageStore store(1024, 256);
  const Snapshot a = store.snapshot(1);
  const Snapshot b = store.snapshot(1);
  const auto delta = make_delta(a, b);
  EXPECT_EQ(delta.changed_pages(), 0u);
  EXPECT_EQ(delta.delta_bytes(), 0u);
  EXPECT_DOUBLE_EQ(delta.dirty_ratio(), 0.0);
}

TEST(MakeDeltaTest, OnlyTouchedPagesIncluded) {
  PageStore store(4 * 256, 256);
  const Snapshot base = store.snapshot(1);
  store.write(0, bytes_of("a"));        // page 0
  store.write(3 * 256, bytes_of("b"));  // page 3
  const Snapshot current = store.snapshot(1);
  const auto delta = make_delta(base, current);
  ASSERT_EQ(delta.changed_pages(), 2u);
  EXPECT_EQ(delta.pages()[0].index, 0u);
  EXPECT_EQ(delta.pages()[1].index, 3u);
  EXPECT_EQ(delta.delta_bytes(), 512u);
  EXPECT_DOUBLE_EQ(delta.dirty_ratio(), 0.5);
}

TEST(MakeDeltaTest, Validation) {
  PageStore a(512, 256), b(512, 256), c(1024, 256);
  const Snapshot sa1 = a.snapshot(1);
  const Snapshot sa2 = a.snapshot(1);
  const Snapshot sb = b.snapshot(2);
  const Snapshot sc = c.snapshot(1);
  EXPECT_THROW(make_delta(sa1, sb), std::invalid_argument);   // owner
  EXPECT_THROW(make_delta(sa1, sc), std::invalid_argument);   // layout
  EXPECT_THROW(make_delta(sa2, sa1), std::invalid_argument);  // order
  EXPECT_THROW(make_delta(sa1, sa1), std::invalid_argument);  // same version
}

TEST(ApplyDeltaTest, RoundTripReconstructsExactly) {
  PageStore store(8 * 128, 128);
  store.write(10, bytes_of("initial content"));
  const Snapshot base = store.snapshot(7);
  store.write(300, bytes_of("second write"));
  store.write(900, bytes_of("third write"));
  const Snapshot current = store.snapshot(7);
  const auto delta = make_delta(base, current);
  const Snapshot rebuilt = apply_delta(base, delta);
  EXPECT_EQ(rebuilt.content_hash(), current.content_hash());
  EXPECT_EQ(rebuilt.version(), current.version());
  EXPECT_EQ(rebuilt.owner(), current.owner());
  EXPECT_EQ(rebuilt.to_bytes(), current.to_bytes());
}

TEST(ApplyDeltaTest, ChainOfDeltas) {
  PageStore store(4 * 256, 256);
  const Snapshot v1 = store.snapshot(1);
  store.write(0, bytes_of("x"));
  const Snapshot v2 = store.snapshot(1);
  store.write(600, bytes_of("y"));
  const Snapshot v3 = store.snapshot(1);
  const auto d12 = make_delta(v1, v2);
  const auto d23 = make_delta(v2, v3);
  const Snapshot rebuilt = apply_delta(apply_delta(v1, d12), d23);
  EXPECT_EQ(rebuilt.content_hash(), v3.content_hash());
}

TEST(ApplyDeltaTest, WrongBaseRejected) {
  PageStore store(512, 256);
  const Snapshot v1 = store.snapshot(1);
  store.write(0, bytes_of("x"));
  const Snapshot v2 = store.snapshot(1);
  store.write(0, bytes_of("y"));
  const Snapshot v3 = store.snapshot(1);
  const auto d23 = make_delta(v2, v3);
  EXPECT_THROW(apply_delta(v1, d23), std::invalid_argument);
}

TEST(DeltaTest, RestorePathStaysConsistent) {
  // Rollback to base, new writes, new snapshot: deltas keep working across
  // restore() because versions keep increasing on the same lineage.
  PageStore store(4 * 256, 256);
  const Snapshot base = store.snapshot(1);
  store.write(0, bytes_of("lost"));
  store.restore(base);
  store.write(256, bytes_of("kept"));
  const Snapshot current = store.snapshot(1);
  const auto delta = make_delta(base, current);
  EXPECT_EQ(delta.changed_pages(), 1u);
  EXPECT_EQ(delta.pages()[0].index, 1u);
  EXPECT_EQ(apply_delta(base, delta).content_hash(),
            current.content_hash());
}

TEST(DeltaTest, DirtyRatioTracksWorkingSetSize) {
  PageStore store(64 * 256, 256);
  const Snapshot base = store.snapshot(1);
  // Touch 8 of 64 pages.
  for (int i = 0; i < 8; ++i) {
    store.write(static_cast<std::size_t>(i) * 8 * 256, bytes_of("w"));
  }
  const auto delta = make_delta(base, store.snapshot(1));
  EXPECT_DOUBLE_EQ(delta.dirty_ratio(), 8.0 / 64.0);
}

}  // namespace
