#include "ckpt/delta.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <optional>
#include <sstream>
#include <vector>

#include "proptest.hpp"

namespace {

using namespace dckpt::ckpt;

std::vector<std::byte> bytes_of(const std::string& text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

TEST(MakeDeltaTest, UntouchedStoreProducesEmptyDelta) {
  PageStore store(1024, 256);
  const Snapshot a = store.snapshot(1);
  const Snapshot b = store.snapshot(1);
  const auto delta = make_delta(a, b);
  EXPECT_EQ(delta.changed_pages(), 0u);
  EXPECT_EQ(delta.delta_bytes(), 0u);
  EXPECT_DOUBLE_EQ(delta.dirty_ratio(), 0.0);
}

TEST(MakeDeltaTest, OnlyTouchedPagesIncluded) {
  PageStore store(4 * 256, 256);
  const Snapshot base = store.snapshot(1);
  store.write(0, bytes_of("a"));        // page 0
  store.write(3 * 256, bytes_of("b"));  // page 3
  const Snapshot current = store.snapshot(1);
  const auto delta = make_delta(base, current);
  ASSERT_EQ(delta.changed_pages(), 2u);
  EXPECT_EQ(delta.pages()[0].index, 0u);
  EXPECT_EQ(delta.pages()[1].index, 3u);
  EXPECT_EQ(delta.delta_bytes(), 512u);
  EXPECT_DOUBLE_EQ(delta.dirty_ratio(), 0.5);
}

TEST(MakeDeltaTest, Validation) {
  PageStore a(512, 256), b(512, 256), c(1024, 256);
  const Snapshot sa1 = a.snapshot(1);
  const Snapshot sa2 = a.snapshot(1);
  const Snapshot sb = b.snapshot(2);
  const Snapshot sc = c.snapshot(1);
  EXPECT_THROW(make_delta(sa1, sb), std::invalid_argument);   // owner
  EXPECT_THROW(make_delta(sa1, sc), std::invalid_argument);   // layout
  EXPECT_THROW(make_delta(sa2, sa1), std::invalid_argument);  // order
  EXPECT_THROW(make_delta(sa1, sa1), std::invalid_argument);  // same version
}

TEST(ApplyDeltaTest, RoundTripReconstructsExactly) {
  PageStore store(8 * 128, 128);
  store.write(10, bytes_of("initial content"));
  const Snapshot base = store.snapshot(7);
  store.write(300, bytes_of("second write"));
  store.write(900, bytes_of("third write"));
  const Snapshot current = store.snapshot(7);
  const auto delta = make_delta(base, current);
  const Snapshot rebuilt = apply_delta(base, delta);
  EXPECT_EQ(rebuilt.content_hash(), current.content_hash());
  EXPECT_EQ(rebuilt.version(), current.version());
  EXPECT_EQ(rebuilt.owner(), current.owner());
  EXPECT_EQ(rebuilt.to_bytes(), current.to_bytes());
}

TEST(ApplyDeltaTest, ChainOfDeltas) {
  PageStore store(4 * 256, 256);
  const Snapshot v1 = store.snapshot(1);
  store.write(0, bytes_of("x"));
  const Snapshot v2 = store.snapshot(1);
  store.write(600, bytes_of("y"));
  const Snapshot v3 = store.snapshot(1);
  const auto d12 = make_delta(v1, v2);
  const auto d23 = make_delta(v2, v3);
  const Snapshot rebuilt = apply_delta(apply_delta(v1, d12), d23);
  EXPECT_EQ(rebuilt.content_hash(), v3.content_hash());
}

TEST(ApplyDeltaTest, WrongBaseRejected) {
  PageStore store(512, 256);
  const Snapshot v1 = store.snapshot(1);
  store.write(0, bytes_of("x"));
  const Snapshot v2 = store.snapshot(1);
  store.write(0, bytes_of("y"));
  const Snapshot v3 = store.snapshot(1);
  const auto d23 = make_delta(v2, v3);
  EXPECT_THROW(apply_delta(v1, d23), std::invalid_argument);
}

TEST(DeltaTest, RestorePathStaysConsistent) {
  // Rollback to base, new writes, new snapshot: deltas keep working across
  // restore() because versions keep increasing on the same lineage.
  PageStore store(4 * 256, 256);
  const Snapshot base = store.snapshot(1);
  store.write(0, bytes_of("lost"));
  store.restore(base);
  store.write(256, bytes_of("kept"));
  const Snapshot current = store.snapshot(1);
  const auto delta = make_delta(base, current);
  EXPECT_EQ(delta.changed_pages(), 1u);
  EXPECT_EQ(delta.pages()[0].index, 1u);
  EXPECT_EQ(apply_delta(base, delta).content_hash(),
            current.content_hash());
}

TEST(DeltaTest, DirtyRatioTracksWorkingSetSize) {
  PageStore store(64 * 256, 256);
  const Snapshot base = store.snapshot(1);
  // Touch 8 of 64 pages.
  for (int i = 0; i < 8; ++i) {
    store.write(static_cast<std::size_t>(i) * 8 * 256, bytes_of("w"));
  }
  const auto delta = make_delta(base, store.snapshot(1));
  EXPECT_DOUBLE_EQ(delta.dirty_ratio(), 8.0 / 64.0);
}

TEST(DeltaTest, DeltaBytesClampsDirtyTailPage) {
  // Regression: 1000 bytes over 256-byte pages leaves a 232-byte logical
  // tail; delta_bytes counted the full 256-byte allocation, over-reporting
  // the buddy transfer volume.
  PageStore store(1000, 256);
  const Snapshot base = store.snapshot(1);
  store.write(999, bytes_of("z"));  // dirties only the tail page
  const auto delta = make_delta(base, store.snapshot(1));
  ASSERT_EQ(delta.changed_pages(), 1u);
  EXPECT_EQ(delta.delta_bytes(), 1000u - 3u * 256u);
  // A full-page entry is still counted whole.
  store.write(0, bytes_of("a"));
  const auto both = make_delta(base, store.snapshot(1));
  ASSERT_EQ(both.changed_pages(), 2u);
  EXPECT_EQ(both.delta_bytes(), 256u + (1000u - 3u * 256u));
}

TEST(DeltaTest, PostFailoverDeltaAfterRestoreOfNewerImage) {
  // Regression companion to PageStore::restore's version bump: a
  // replacement node restores the committed image and must be able to ship
  // an incremental delta against it afterwards.
  PageStore source(4 * 256, 256);
  source.write(0, bytes_of("origin"));
  Snapshot committed;
  for (int i = 0; i < 3; ++i) committed = source.snapshot(1);
  PageStore replacement(4 * 256, 256);
  replacement.restore(committed);
  replacement.write(256, bytes_of("post-failover"));
  const Snapshot next = replacement.snapshot(1);
  const auto delta = make_delta(committed, next);  // threw before the fix
  EXPECT_EQ(delta.changed_pages(), 1u);
  EXPECT_EQ(apply_delta(committed, delta).content_hash(),
            next.content_hash());
}

TEST(DeltaTest, PropertyRoundTripReconstructsAnyWritePattern) {
  // forall random layouts (including non-page-aligned) and write patterns:
  // apply_delta(base, make_delta(base, cur)) must reconstruct cur exactly,
  // with delta_bytes never exceeding the logical image size -- also through
  // a restore()-then-diverge chain (the rollback path).
  struct Case {
    std::uint64_t size = 1;
    std::uint64_t page = 1;
    std::uint64_t seed = 0;
    std::uint64_t writes = 0;
    bool via_restore = false;
  };
  proptest::ForallConfig config;
  config.seed = 0xde17a;
  config.iterations = 150;
  proptest::forall<Case>(
      config,
      [](proptest::Gen& gen) {
        Case c;
        c.size = gen.integer(1, 4096);
        c.page = gen.integer(1, 512);
        c.seed = gen.integer(0, 1u << 30);
        c.writes = gen.integer(0, 24);
        c.via_restore = gen.boolean();
        return c;
      },
      [](const Case& c) -> std::optional<std::string> {
        PageStore store(c.size, c.page);
        proptest::Gen g(c.seed ^ 0x5eedULL);
        const auto scribble = [&](std::uint64_t count) {
          for (std::uint64_t i = 0; i < count; ++i) {
            const auto offset =
                static_cast<std::size_t>(g.integer(0, c.size - 1));
            const auto len = static_cast<std::size_t>(
                g.integer(1, std::min<std::uint64_t>(c.size - offset, 64)));
            std::vector<std::byte> data(len);
            for (auto& b : data) {
              b = static_cast<std::byte>(g.integer(0, 255));
            }
            store.write(offset, data);
          }
        };
        scribble(c.writes);
        const Snapshot base = store.snapshot(1);
        if (c.via_restore) {
          scribble(3);          // doomed work...
          store.restore(base);  // ...rolled back before diverging again
        }
        scribble(c.writes / 2 + 1);
        const Snapshot current = store.snapshot(1);
        const auto delta = make_delta(base, current);
        if (delta.delta_bytes() > c.size) {
          return "delta_bytes exceeds the logical image size";
        }
        const Snapshot rebuilt = apply_delta(base, delta);
        if (rebuilt.content_hash() != current.content_hash()) {
          return "round-trip content hash mismatch";
        }
        if (rebuilt.to_bytes() != current.to_bytes()) {
          return "round-trip byte mismatch";
        }
        return std::nullopt;
      },
      nullptr,
      [](const Case& c) {
        std::ostringstream out;
        out << "size=" << c.size << " page=" << c.page << " seed=" << c.seed
            << " writes=" << c.writes
            << " via_restore=" << (c.via_restore ? "yes" : "no");
        return out.str();
      });
}

}  // namespace
