#include "sim/trace_injector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "sim/protocol_sim.hpp"
#include "model/scenario.hpp"

namespace {

using namespace dckpt::sim;

TEST(TraceInjectorTest, ReplaysScheduleThenGoesSilent) {
  TraceInjector injector({{1.0, 0}, {2.5, 3}, {9.0, 1}}, 4);
  EXPECT_EQ(injector.remaining(), 3u);
  EXPECT_DOUBLE_EQ(injector.peek().time, 1.0);
  injector.pop();
  EXPECT_DOUBLE_EQ(injector.peek().time, 2.5);
  EXPECT_EQ(injector.peek().node, 3u);
  injector.pop();
  injector.pop();
  EXPECT_TRUE(std::isinf(injector.peek().time));
  EXPECT_EQ(injector.remaining(), 0u);
  injector.pop();  // idempotent past the end
  EXPECT_TRUE(std::isinf(injector.peek().time));
}

TEST(TraceInjectorTest, ReplacementIsANoop) {
  TraceInjector injector({{1.0, 0}}, 2);
  injector.on_node_replaced(0, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(injector.peek().time, 1.0);
}

TEST(TraceInjectorTest, Validation) {
  EXPECT_THROW(TraceInjector({{2.0, 0}, {1.0, 0}}, 2), std::invalid_argument);
  EXPECT_THROW(TraceInjector({{1.0, 5}}, 2), std::invalid_argument);
  EXPECT_THROW(TraceInjector({}, 0), std::invalid_argument);
}

class TraceFileTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/dckpt_trace_test.txt";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(TraceFileTest, SaveLoadRoundTrip) {
  const std::vector<FailureEvent> events = {
      {0.5, 3}, {12.25, 0}, {100.125, 7}};
  save_failure_trace(path_, events);
  const auto loaded = load_failure_trace(path_);
  ASSERT_EQ(loaded.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].time, events[i].time);
    EXPECT_EQ(loaded[i].node, events[i].node);
  }
}

TEST_F(TraceFileTest, CommentsAndBlanksIgnored) {
  {
    std::ofstream out(path_);
    out << "# header comment\n\n  # indented comment\n1.5 2\n\n3.0 0\n";
  }
  const auto loaded = load_failure_trace(path_);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[0].time, 1.5);
  EXPECT_EQ(loaded[0].node, 2u);
}

TEST_F(TraceFileTest, BadLinesRejectedWithLineNumber) {
  {
    std::ofstream out(path_);
    out << "1.0 0\nnot-a-number 3\n";
  }
  try {
    load_failure_trace(path_);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
}

TEST_F(TraceFileTest, UnsortedFileRejected) {
  {
    std::ofstream out(path_);
    out << "5.0 0\n1.0 1\n";
  }
  EXPECT_THROW(load_failure_trace(path_), std::runtime_error);
}

TEST_F(TraceFileTest, MissingFileRejected) {
  EXPECT_THROW(load_failure_trace("/nonexistent/trace.txt"),
               std::runtime_error);
}

TEST(GenerateFailureTraceTest, RespectsHorizonAndSorting) {
  const auto dist = dckpt::util::Exponential::from_mean(50.0);
  const auto events = generate_failure_trace(dist, 8, 1000.0,
                                             dckpt::util::Xoshiro256ss(3));
  ASSERT_FALSE(events.empty());
  double previous = 0.0;
  for (const auto& event : events) {
    EXPECT_GE(event.time, previous);
    EXPECT_LT(event.time, 1000.0);
    EXPECT_LT(event.node, 8u);
    previous = event.time;
  }
  // ~8 nodes * 1000/50 = 160 expected events.
  EXPECT_GT(events.size(), 100u);
  EXPECT_LT(events.size(), 240u);
}

TEST(GenerateFailureTraceTest, Validation) {
  const auto dist = dckpt::util::Exponential::from_mean(50.0);
  EXPECT_THROW(
      generate_failure_trace(dist, 0, 10.0, dckpt::util::Xoshiro256ss(1)),
      std::invalid_argument);
  EXPECT_THROW(
      generate_failure_trace(dist, 2, 0.0, dckpt::util::Xoshiro256ss(1)),
      std::invalid_argument);
}

TEST(TraceDrivenSimulationTest, TraceFeedsProtocolSimulation) {
  // End-to-end: generate a synthetic log, replay it through the simulator,
  // and check the failures were actually consumed.
  SimConfig config;
  config.protocol = dckpt::model::Protocol::DoubleNbl;
  config.params = dckpt::model::base_scenario().params.with_overhead(1.0);
  config.params.nodes = 8;
  config.params.mtbf = 500.0;  // documents intent; trace drives failures
  config.period = 100.0;
  config.t_base = 2000.0;
  config.stop_on_fatal = false;

  const auto dist = dckpt::util::Exponential::from_mean(
      500.0 * 8);  // per-node mean matching M = 500 s
  auto events = generate_failure_trace(dist, 8, 1e5,
                                       dckpt::util::Xoshiro256ss(11));
  const auto injector = std::make_unique<TraceInjector>(events, 8);
  ProtocolSimulation simulation(
      config, std::make_unique<TraceInjector>(std::move(events), 8));
  const auto result = simulation.run();
  EXPECT_GT(result.failures, 0u);
  EXPECT_GT(result.makespan, config.t_base);
}

}  // namespace
