// Socket-level tests for the poll()-based serve front end (sim::Server):
// line framing across arbitrary recv boundaries, pipelining, CRLF and
// blank lines, the overlong-line guard, partial-write resumption (the
// short-write truncation regression), admission control / busy shedding,
// HEALTH/DRAIN, deadlines, and disconnect accounting. Each test runs a
// real server on an auto-picked loopback port with tight deadlines so the
// whole file stays in the fast lane. The campaign-scale adversarial
// harness is tests/serve_torture.cpp.
#include "sim/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "sim/service.hpp"
#include "util/json.hpp"

namespace {

using namespace dckpt;

/// Server under test running on its own thread. Deadlines default tight
/// enough that nothing in this file waits longer than a few hundred ms.
class ServerFixture {
 public:
  explicit ServerFixture(sim::ServerOptions options = tight_options(),
                         sim::EvalServiceOptions service_options = {})
      : service_(service_options), server_(service_, options) {
    if (!server_.start()) throw std::runtime_error("server start failed");
    thread_ = std::thread([this] {
      exit_code_ = server_.run();
      done_.store(true);
    });
  }

  ~ServerFixture() { stop(); }

  static sim::ServerOptions tight_options() {
    sim::ServerOptions options;
    options.read_idle_ms = 2000;
    options.write_stall_ms = 2000;
    return options;
  }

  int port() const { return server_.port(); }

  /// Joins the loop (requesting a drain if still running) and returns the
  /// counters, which are only data-race-free to read after the join.
  const sim::ServerCounters& stop() {
    if (thread_.joinable()) {
      server_.request_stop();
      thread_.join();
    }
    EXPECT_EQ(exit_code_, 0);
    return server_.counters();
  }

  /// True once run() returned (the loop exited on its own).
  bool exited() const { return done_.load(); }

  /// Spins (bounded) until run() exits without a stop request, for tests
  /// where DRAIN or --once must stop the server by themselves.
  bool wait_exited(int timeout_ms = 2000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!exited() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return exited();
  }

 private:
  sim::EvalService service_;
  sim::Server server_;
  std::thread thread_;
  std::atomic<bool> done_{false};
  int exit_code_ = -1;
};

/// Blocking loopback client with a poll()-guarded line reader so a server
/// bug shows up as a test failure, never a hang.
class Client {
 public:
  explicit Client(int port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("client socket");
    if (rcvbuf > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      throw std::runtime_error("client connect");
    }
  }

  ~Client() { close(); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void send_all(const std::string& data, std::size_t chunk = 0) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const std::size_t len = chunk == 0
                                  ? data.size() - sent
                                  : std::min(chunk, data.size() - sent);
      const auto wrote = ::send(fd_, data.data() + sent, len, MSG_NOSIGNAL);
      ASSERT_GT(wrote, 0) << "client send failed";
      sent += static_cast<std::size_t>(wrote);
    }
  }

  /// Next newline-terminated line (without the newline); empty string on
  /// EOF or timeout.
  std::string read_line(int timeout_ms = 2000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      if (left <= 0) return {};
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, static_cast<int>(left)) <= 0) return {};
      char chunk[4096];
      const auto got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got <= 0) return {};
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
  }

  util::JsonValue read_json(int timeout_ms = 2000) {
    const std::string line = read_line(timeout_ms);
    if (line.empty()) {
      ADD_FAILURE() << "expected a reply line, got EOF/timeout";
      return {};
    }
    return util::parse_json(line);
  }

  /// True once the server closed its end (EOF within the timeout).
  bool at_eof(int timeout_ms = 2000) {
    if (!buffer_.empty()) return false;
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
    char chunk[64];
    return ::recv(fd_, chunk, sizeof(chunk), 0) <= 0;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string sim_line(int seed, int trials = 25) {
  return "EVAL kind=sim protocol=DoubleNBL mtbf=900 nodes=8 tbase=2000 "
         "period=100 trials=" +
         std::to_string(trials) + " seed=" + std::to_string(seed);
}

TEST(Server, FramesRequestsSplitAcrossRecvBoundaries) {
  ServerFixture fixture;
  Client client(fixture.port());
  // One byte per segment: the classic torture test for line reassembly.
  client.send_all("EVAL kind=period protocol=Triple mtbf=3600\n", 1);
  const auto v = client.read_json();
  EXPECT_EQ(v.at("record").as_string(), "eval");
  EXPECT_EQ(v.at("kind").as_string(), "period");
  client.send_all("QUIT\n", 1);
  EXPECT_EQ(client.read_json().at("record").as_string(), "bye");
  const auto& counters = fixture.stop();
  EXPECT_EQ(counters.accepted, 1u);
  EXPECT_EQ(counters.disconnects, 0u);
}

TEST(Server, AnswersPipelinedRequestsInOrder) {
  ServerFixture fixture;
  Client client(fixture.port());
  std::string batch;
  for (int i = 0; i < 5; ++i) {
    batch += "EVAL kind=waste protocol=Triple mtbf=" +
             std::to_string(3600 + i * 100) + " period=600\n";
  }
  batch += "STATS\nQUIT\n";
  client.send_all(batch);
  for (int i = 0; i < 5; ++i) {
    const auto v = client.read_json();
    ASSERT_EQ(v.at("record").as_string(), "eval") << "reply " << i;
  }
  EXPECT_EQ(client.read_json().at("record").as_string(), "serve_stats");
  EXPECT_EQ(client.read_json().at("record").as_string(), "bye");
  EXPECT_TRUE(client.at_eof());
  fixture.stop();
}

TEST(Server, AcceptsCrlfAndSkipsBlankLines) {
  ServerFixture fixture;
  Client client(fixture.port());
  client.send_all(
      "\r\n\nEVAL kind=period protocol=Triple mtbf=3600\r\n\r\nQUIT\r\n");
  EXPECT_EQ(client.read_json().at("record").as_string(), "eval");
  EXPECT_EQ(client.read_json().at("record").as_string(), "bye");
  fixture.stop();
}

TEST(Server, OverlongLineAnswersTypedErrorAndConnectionSurvives) {
  auto options = ServerFixture::tight_options();
  options.max_line = 128;
  ServerFixture fixture(options);
  Client client(fixture.port());
  client.send_all(std::string(300, 'x') + "\n");
  const auto error = client.read_json();
  EXPECT_EQ(error.at("record").as_string(), "eval_error");
  EXPECT_EQ(error.at("code").as_string(), "overlong");
  // The same connection keeps working after the oversized line.
  client.send_all("EVAL kind=period protocol=Triple mtbf=3600\nQUIT\n");
  EXPECT_EQ(client.read_json().at("record").as_string(), "eval");
  EXPECT_EQ(client.read_json().at("record").as_string(), "bye");
  const auto& counters = fixture.stop();
  EXPECT_EQ(counters.overlong_lines, 1u);
}

TEST(Server, NewlineFreeFloodIsBoundedAndAnswered) {
  auto options = ServerFixture::tight_options();
  options.max_line = 256;
  ServerFixture fixture(options);
  Client client(fixture.port());
  // 64 KiB without a newline: the guard must fire exactly once, not per
  // chunk, and memory stays bounded by max_line + one read chunk.
  client.send_all(std::string(65536, 'y'));
  const auto error = client.read_json();
  EXPECT_EQ(error.at("code").as_string(), "overlong");
  client.send_all("\nSTATS\nQUIT\n");
  EXPECT_EQ(client.read_json().at("record").as_string(), "serve_stats");
  EXPECT_EQ(client.read_json().at("record").as_string(), "bye");
  const auto& counters = fixture.stop();
  EXPECT_EQ(counters.overlong_lines, 1u);
}

TEST(Server, ShedsHeavyWorkWithTypedBusyOnceQueueIsFull) {
  auto options = ServerFixture::tight_options();
  options.queue_depth = 1;
  ServerFixture fixture(options);
  Client client(fixture.port());
  // Three distinct uncached sims in one segment: the first fills the
  // bounded queue, the other two must shed with code=busy -- and the
  // replies still arrive in request order.
  client.send_all(sim_line(1) + "\n" + sim_line(2) + "\n" + sim_line(3) +
                  "\nQUIT\n");
  const auto first = client.read_json();
  EXPECT_EQ(first.at("record").as_string(), "eval");
  EXPECT_EQ(first.at("kind").as_string(), "sim");
  for (int i = 0; i < 2; ++i) {
    const auto busy = client.read_json();
    EXPECT_EQ(busy.at("record").as_string(), "eval_error");
    EXPECT_EQ(busy.at("code").as_string(), "busy");
  }
  EXPECT_EQ(client.read_json().at("record").as_string(), "bye");
  const auto& counters = fixture.stop();
  EXPECT_EQ(counters.shed, 2u);
}

TEST(Server, CachedSimIsLightAndBypassesTheQueue) {
  auto options = ServerFixture::tight_options();
  options.queue_depth = 1;
  ServerFixture fixture(options);
  Client client(fixture.port());
  client.send_all(sim_line(7) + "\n");
  EXPECT_EQ(client.read_json().at("cached").as_bool(), false);
  // Replay plus a fresh heavy request in one segment: the cached replay
  // is light, so only the fresh sim occupies the queue -- nothing sheds.
  client.send_all(sim_line(7) + "\n" + sim_line(8) + "\nQUIT\n");
  EXPECT_EQ(client.read_json().at("cached").as_bool(), true);
  EXPECT_EQ(client.read_json().at("cached").as_bool(), false);
  EXPECT_EQ(client.read_json().at("record").as_string(), "bye");
  const auto& counters = fixture.stop();
  EXPECT_EQ(counters.shed, 0u);
}

TEST(Server, RepliesKeepRequestOrderAcrossHeavyWork) {
  ServerFixture fixture;
  Client client(fixture.port());
  // A heavy sim followed by an instant closed-form query: the light reply
  // must wait behind the sim's pending slot.
  client.send_all(sim_line(11) +
                  "\nEVAL kind=period protocol=Triple mtbf=3600\nQUIT\n");
  EXPECT_EQ(client.read_json().at("kind").as_string(), "sim");
  EXPECT_EQ(client.read_json().at("kind").as_string(), "period");
  EXPECT_EQ(client.read_json().at("record").as_string(), "bye");
  fixture.stop();
}

TEST(Server, ResumesShortWritesWithoutTruncation) {
  auto options = ServerFixture::tight_options();
  options.sndbuf = 4096;  // force partial send() under backpressure
  ServerFixture fixture(options);
  Client client(fixture.port(), /*rcvbuf=*/2048);
  // ~30 serve_stats replies (~500 bytes each) overflow the shrunken
  // buffers while the client is not reading; every reply must still
  // arrive complete once it does read. The pre-rewrite server truncated
  // here (send() treated as all-or-nothing).
  std::string batch;
  for (int i = 0; i < 30; ++i) batch += "STATS\n";
  client.send_all(batch);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (int i = 0; i < 30; ++i) {
    const auto v = client.read_json();
    ASSERT_EQ(v.at("record").as_string(), "serve_stats")
        << "reply " << i << " truncated or lost";
  }
  client.send_all("QUIT\n");
  EXPECT_EQ(client.read_json().at("record").as_string(), "bye");
  const auto& counters = fixture.stop();
  EXPECT_EQ(counters.write_timeouts, 0u);
}

TEST(Server, ClosesIdleConnectionsWithTimeoutError) {
  auto options = ServerFixture::tight_options();
  options.read_idle_ms = 60;
  ServerFixture fixture(options);
  Client client(fixture.port());
  const auto farewell = client.read_json(/*timeout_ms=*/2000);
  EXPECT_EQ(farewell.at("record").as_string(), "eval_error");
  EXPECT_EQ(farewell.at("code").as_string(), "timeout");
  EXPECT_TRUE(client.at_eof());
  const auto& counters = fixture.stop();
  EXPECT_EQ(counters.read_timeouts, 1u);
  EXPECT_EQ(counters.disconnects, 0u);  // the server closed, not the peer
}

TEST(Server, ReapsStalledWritersAfterWriteDeadline) {
  auto options = ServerFixture::tight_options();
  options.sndbuf = 4096;
  options.high_water = 8192;
  options.write_stall_ms = 100;
  options.read_idle_ms = 10000;  // the stall must fire first
  ServerFixture fixture(options);
  Client client(fixture.port(), /*rcvbuf=*/2048);
  // Enough replies to wedge both socket buffers, then never read.
  std::string batch;
  for (int i = 0; i < 80; ++i) batch += "STATS\n";
  client.send_all(batch);
  // Never read. The replies wedge both socket buffers, the front slot
  // stops making progress, and the 100 ms stall deadline must reap the
  // connection. Poll the loop-thread-owned counter through a second,
  // well-behaved connection so there is no racy direct read.
  Client observer(fixture.port());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  double seen = 0.0;
  while (std::chrono::steady_clock::now() < deadline) {
    observer.send_all("STATS\n");
    seen = observer.read_json().at("server").at("write_timeouts").as_number();
    if (seen == 1.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(seen, 1.0);
  observer.send_all("QUIT\n");
  EXPECT_EQ(observer.read_json().at("record").as_string(), "bye");
  const auto& counters = fixture.stop();
  EXPECT_EQ(counters.write_timeouts, 1u);
  EXPECT_EQ(counters.disconnects, 0u);  // a reap is a server-side close
}

TEST(Server, HealthReportsStatusAndDrainRejectsNewWork) {
  ServerFixture fixture;
  Client client(fixture.port());
  client.send_all("HEALTH\n");
  const auto health = client.read_json();
  EXPECT_EQ(health.at("record").as_string(), "health");
  EXPECT_EQ(health.at("status").as_string(), "ok");
  EXPECT_EQ(health.at("connections").as_number(), 1.0);
  // DRAIN + a late EVAL in one segment: the ack and the typed shutdown
  // rejection both flush before the server exits on its own.
  client.send_all("DRAIN\nEVAL kind=period protocol=Triple mtbf=3600\n");
  const auto drain = client.read_json();
  EXPECT_EQ(drain.at("record").as_string(), "drain");
  EXPECT_TRUE(drain.at("draining").as_bool());
  const auto rejected = client.read_json();
  EXPECT_EQ(rejected.at("record").as_string(), "eval_error");
  EXPECT_EQ(rejected.at("code").as_string(), "shutdown");
  EXPECT_TRUE(client.at_eof());
  EXPECT_TRUE(fixture.wait_exited()) << "DRAIN did not stop the server";
  fixture.stop();
}

TEST(Server, CountsMidRequestDisconnects) {
  ServerFixture fixture;
  {
    Client rude(fixture.port());
    rude.send_all("EVAL kind=per");  // no newline: an unfinished request
  }  // abrupt close
  // The disconnect counter is read through STATS (rendered on the loop
  // thread) so there is no racy direct access while the server runs.
  Client observer(fixture.port());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  double seen = 0.0;
  while (std::chrono::steady_clock::now() < deadline) {
    observer.send_all("STATS\n");
    const auto stats = observer.read_json();
    seen = stats.at("server").at("disconnects").as_number();
    if (seen == 1.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(seen, 1.0);
  observer.send_all("QUIT\n");
  EXPECT_EQ(observer.read_json().at("record").as_string(), "bye");
  const auto& counters = fixture.stop();
  EXPECT_EQ(counters.disconnects, 1u);
}

TEST(Server, QuitStopsParsingTrailingInput) {
  ServerFixture fixture;
  Client client(fixture.port());
  client.send_all("QUIT\nEVAL kind=period protocol=Triple mtbf=3600\n");
  EXPECT_EQ(client.read_json().at("record").as_string(), "bye");
  EXPECT_TRUE(client.at_eof());  // no reply for the post-QUIT request
  fixture.stop();
}

TEST(Server, OnceModeExitsAfterFirstConnectionCloses) {
  auto options = ServerFixture::tight_options();
  options.once = true;
  ServerFixture fixture(options);
  {
    Client client(fixture.port());
    client.send_all("EVAL kind=period protocol=Triple mtbf=3600\nQUIT\n");
    EXPECT_EQ(client.read_json().at("record").as_string(), "eval");
    EXPECT_EQ(client.read_json().at("record").as_string(), "bye");
  }
  EXPECT_TRUE(fixture.wait_exited()) << "--once did not stop the server";
  fixture.stop();
}

TEST(Server, OptionsAreValidated) {
  sim::EvalService service;
  sim::ServerOptions zero_queue;
  zero_queue.queue_depth = 0;
  EXPECT_THROW(sim::Server(service, zero_queue), std::invalid_argument);
  sim::ServerOptions bad_deadline;
  bad_deadline.read_idle_ms = 0;
  EXPECT_THROW(sim::Server(service, bad_deadline), std::invalid_argument);
  sim::ServerOptions bad_port;
  bad_port.port = 70000;
  EXPECT_THROW(sim::Server(service, bad_port), std::invalid_argument);
}

}  // namespace
