#include "ckpt/ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using dckpt::ckpt::GroupAssignment;
using dckpt::ckpt::Topology;

TEST(GroupAssignmentTest, PairTopology) {
  GroupAssignment groups(8, Topology::Pairs);
  EXPECT_EQ(groups.group_size(), 2);
  EXPECT_EQ(groups.group_count(), 4u);
  EXPECT_EQ(groups.group_of(0), 0u);
  EXPECT_EQ(groups.group_of(5), 2u);
  EXPECT_EQ(groups.preferred_buddy(0), 1u);
  EXPECT_EQ(groups.preferred_buddy(1), 0u);
  EXPECT_EQ(groups.preferred_buddy(6), 7u);
  EXPECT_EQ(groups.preferred_buddy(7), 6u);
}

TEST(GroupAssignmentTest, PairsHaveNoSecondaryBuddy) {
  GroupAssignment groups(4, Topology::Pairs);
  EXPECT_THROW(groups.secondary_buddy(0), std::logic_error);
}

TEST(GroupAssignmentTest, TripleRotationMatchesPaper) {
  // Paper Sec. IV: p -> p' preferred, p'' secondary; p' -> p'' preferred,
  // p secondary; p'' -> p preferred, p' secondary.
  GroupAssignment groups(9, Topology::Triples);
  const std::uint64_t p = 3, p1 = 4, p2 = 5;
  EXPECT_EQ(groups.preferred_buddy(p), p1);
  EXPECT_EQ(groups.secondary_buddy(p), p2);
  EXPECT_EQ(groups.preferred_buddy(p1), p2);
  EXPECT_EQ(groups.secondary_buddy(p1), p);
  EXPECT_EQ(groups.preferred_buddy(p2), p);
  EXPECT_EQ(groups.secondary_buddy(p2), p1);
}

TEST(GroupAssignmentTest, MembersAreContiguous) {
  GroupAssignment groups(9, Topology::Triples);
  EXPECT_EQ(groups.members(1), (std::vector<std::uint64_t>{3, 4, 5}));
  GroupAssignment pairs(6, Topology::Pairs);
  EXPECT_EQ(pairs.members(2), (std::vector<std::uint64_t>{4, 5}));
}

TEST(GroupAssignmentTest, StoredForIsInverseOfBuddyMaps) {
  GroupAssignment triples(9, Topology::Triples);
  for (std::uint64_t node = 0; node < 9; ++node) {
    // `node` appears in stored_for(x) exactly when x receives node's image.
    for (std::uint64_t holder : {triples.preferred_buddy(node),
                                 triples.secondary_buddy(node)}) {
      const auto held = triples.stored_for(holder);
      EXPECT_NE(std::find(held.begin(), held.end(), node), held.end())
          << "node " << node << " holder " << holder;
    }
  }
}

TEST(GroupAssignmentTest, EveryTripleNodeStoresExactlyTwo) {
  GroupAssignment triples(6, Topology::Triples);
  for (std::uint64_t node = 0; node < 6; ++node) {
    EXPECT_EQ(triples.stored_for(node).size(), 2u);
  }
}

TEST(GroupAssignmentTest, EveryPairNodeStoresExactlyOne) {
  GroupAssignment pairs(6, Topology::Pairs);
  for (std::uint64_t node = 0; node < 6; ++node) {
    const auto held = pairs.stored_for(node);
    ASSERT_EQ(held.size(), 1u);
    EXPECT_EQ(held[0], pairs.preferred_buddy(node));
  }
}

TEST(GroupAssignmentTest, BuddiesStayInGroup) {
  GroupAssignment triples(12, Topology::Triples);
  for (std::uint64_t node = 0; node < 12; ++node) {
    EXPECT_EQ(triples.group_of(triples.preferred_buddy(node)),
              triples.group_of(node));
    EXPECT_EQ(triples.group_of(triples.secondary_buddy(node)),
              triples.group_of(node));
    EXPECT_NE(triples.preferred_buddy(node), node);
    EXPECT_NE(triples.secondary_buddy(node), node);
    EXPECT_NE(triples.preferred_buddy(node), triples.secondary_buddy(node));
  }
}

TEST(GroupAssignmentTest, Validation) {
  EXPECT_THROW(GroupAssignment(7, Topology::Pairs), std::invalid_argument);
  EXPECT_THROW(GroupAssignment(8, Topology::Triples), std::invalid_argument);
  EXPECT_THROW(GroupAssignment(0, Topology::Pairs), std::invalid_argument);
  GroupAssignment groups(4, Topology::Pairs);
  EXPECT_THROW(groups.group_of(4), std::out_of_range);
  EXPECT_THROW(groups.preferred_buddy(9), std::out_of_range);
  EXPECT_THROW(groups.members(2), std::out_of_range);
}

}  // namespace
