#include "model/parameters.hpp"

#include <gtest/gtest.h>

#include "model/protocol.hpp"

namespace {

using namespace dckpt::model;

Parameters valid_params() {
  Parameters p;
  p.downtime = 0.0;
  p.local_ckpt = 2.0;
  p.remote_blocking = 4.0;
  p.alpha = 10.0;
  p.overhead = 1.0;
  p.nodes = 1024;
  p.mtbf = 3600.0;
  return p;
}

TEST(ParametersTest, ValidSetPasses) {
  EXPECT_NO_THROW(valid_params().validate());
}

TEST(ParametersTest, RejectsOutOfDomainFields) {
  auto bad = valid_params();
  bad.downtime = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = valid_params();
  bad.remote_blocking = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = valid_params();
  bad.overhead = 5.0;  // > R
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = valid_params();
  bad.nodes = 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = valid_params();
  bad.mtbf = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = valid_params();
  bad.local_ckpt = std::numeric_limits<double>::infinity();
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(ParametersTest, DerivedQuantities) {
  const auto p = valid_params();
  EXPECT_DOUBLE_EQ(p.recovery(), 4.0);
  EXPECT_DOUBLE_EQ(p.node_mtbf(), 3600.0 * 1024.0);
  EXPECT_DOUBLE_EQ(p.lambda(), 1.0 / (3600.0 * 1024.0));
  // theta(phi=1) with R=4, alpha=10: 4 + 10*(4-1) = 34.
  EXPECT_DOUBLE_EQ(p.theta(), 34.0);
}

TEST(ParametersTest, WithersCopy) {
  const auto p = valid_params();
  const auto q = p.with_overhead(0.0).with_mtbf(60.0);
  EXPECT_DOUBLE_EQ(q.overhead, 0.0);
  EXPECT_DOUBLE_EQ(q.mtbf, 60.0);
  // Original untouched.
  EXPECT_DOUBLE_EQ(p.overhead, 1.0);
  EXPECT_DOUBLE_EQ(p.mtbf, 3600.0);
}

TEST(ParametersTest, DescribeMentionsFields) {
  const std::string text = valid_params().describe();
  EXPECT_NE(text.find("R=4"), std::string::npos);
  EXPECT_NE(text.find("n=1024"), std::string::npos);
}

TEST(MinPeriodTest, DoubleProtocols) {
  const auto p = valid_params();
  // delta + theta(phi) = 2 + 34.
  EXPECT_DOUBLE_EQ(min_period(Protocol::DoubleNbl, p), 36.0);
  EXPECT_DOUBLE_EQ(min_period(Protocol::DoubleBof, p), 36.0);
  // DoubleBlocking pins theta = R: delta + R = 6.
  EXPECT_DOUBLE_EQ(min_period(Protocol::DoubleBlocking, p), 6.0);
}

TEST(MinPeriodTest, TripleProtocols) {
  const auto p = valid_params();
  EXPECT_DOUBLE_EQ(min_period(Protocol::Triple, p), 68.0);
  EXPECT_DOUBLE_EQ(min_period(Protocol::TripleBof, p), 68.0);
}

TEST(EffectiveTransferTest, BlockingPinsThetaAndPhi) {
  const auto p = valid_params();
  const auto t = effective_transfer(Protocol::DoubleBlocking, p);
  EXPECT_DOUBLE_EQ(t.theta, 4.0);
  EXPECT_DOUBLE_EQ(t.phi, 4.0);
  const auto nbl = effective_transfer(Protocol::DoubleNbl, p);
  EXPECT_DOUBLE_EQ(nbl.theta, 34.0);
  EXPECT_DOUBLE_EQ(nbl.phi, 1.0);
}

TEST(ProtocolTest, Names) {
  EXPECT_EQ(protocol_name(Protocol::DoubleNbl), "DoubleNBL");
  EXPECT_EQ(protocol_name(Protocol::DoubleBof), "DoubleBoF");
  EXPECT_EQ(protocol_name(Protocol::Triple), "Triple");
  EXPECT_EQ(protocol_name(Protocol::TripleBof), "TripleBoF");
  EXPECT_EQ(protocol_name(Protocol::DoubleBlocking), "DoubleBlocking");
}

TEST(ProtocolTest, FromNameIsCaseInsensitiveInverse) {
  for (auto protocol : kAllProtocols) {
    const std::string name(protocol_name(protocol));
    EXPECT_EQ(protocol_from_name(name), protocol);
    std::string lower = name;
    for (auto& ch : lower) ch = static_cast<char>(std::tolower(ch));
    EXPECT_EQ(protocol_from_name(lower), protocol);
  }
  EXPECT_EQ(protocol_from_name("bogus"), std::nullopt);
  EXPECT_EQ(protocol_from_name(""), std::nullopt);
}

TEST(ProtocolTest, ParseThrowsWithValidNames) {
  EXPECT_EQ(parse_protocol_name("triple"), Protocol::Triple);
  try {
    parse_protocol_name("nope");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("DoubleNBL"),
              std::string::npos);
  }
}

TEST(ProtocolTest, GroupSizes) {
  EXPECT_EQ(group_size(dckpt::model::Protocol::DoubleNbl), 2);
  EXPECT_EQ(group_size(dckpt::model::Protocol::Triple), 3);
  EXPECT_TRUE(is_triple(Protocol::TripleBof));
  EXPECT_FALSE(is_triple(Protocol::DoubleBof));
}

TEST(ProtocolTest, BlockingOnFailureFlags) {
  EXPECT_FALSE(blocking_on_failure(Protocol::DoubleNbl));
  EXPECT_TRUE(blocking_on_failure(Protocol::DoubleBof));
  EXPECT_TRUE(blocking_on_failure(Protocol::DoubleBlocking));
  EXPECT_FALSE(blocking_on_failure(Protocol::Triple));
  EXPECT_TRUE(blocking_on_failure(Protocol::TripleBof));
}

}  // namespace
