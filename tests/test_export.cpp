#include "sim/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "model/scenario.hpp"
#include "util/json.hpp"

namespace {

using namespace dckpt;
using namespace dckpt::sim;
using dckpt::util::JsonValue;
using dckpt::util::parse_json;
using dckpt::util::parse_jsonl;

// ------------------------------------------------------------- JSON core

TEST(JsonTest, ScalarRoundTrip) {
  EXPECT_DOUBLE_EQ(parse_json("1.5").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(parse_json("-3e-7").as_number(), -3e-7);
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_EQ(parse_json("\"a\\\"b\\nc\"").as_string(), "a\"b\nc");
  EXPECT_EQ(parse_json("null").type(), JsonValue::Type::Null);
}

TEST(JsonTest, ShortestRoundTripNumbers) {
  // The exact values that motivated to_chars: full double precision.
  for (double x : {0.1, 1.0 / 3.0, 6.02214076e23, 1e-300, 12345.678901234567}) {
    EXPECT_EQ(parse_json(JsonValue(x).dump()).as_number(), x);
  }
}

TEST(JsonTest, NestedDocumentRoundTrip) {
  auto doc = JsonValue::object();
  doc.set("name", "waste histogram");
  doc.set("n", 3);
  auto arr = JsonValue::array();
  arr.push_back(1.0);
  arr.push_back(2.5);
  doc.set("bins", std::move(arr));
  const JsonValue back = parse_json(doc.dump());
  EXPECT_EQ(back.at("name").as_string(), "waste histogram");
  EXPECT_DOUBLE_EQ(back.at("n").as_number(), 3.0);
  ASSERT_EQ(back.at("bins").size(), 2u);
  EXPECT_DOUBLE_EQ(back.at("bins").items()[1].as_number(), 2.5);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_json("{"), std::invalid_argument);
  EXPECT_THROW(parse_json("1.5 garbage"), std::invalid_argument);
  EXPECT_THROW(parse_json("{\"a\":}"), std::invalid_argument);
  EXPECT_THROW(parse_json("tru"), std::invalid_argument);
}

TEST(JsonTest, ParseJsonlSkipsBlankLines) {
  const auto docs = parse_jsonl("{\"a\":1}\n\n{\"a\":2}\n");
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_DOUBLE_EQ(docs[1].at("a").as_number(), 2.0);
}

// ----------------------------------------------------------- round trips

SimConfig quick_config() {
  SimConfig config;
  config.protocol = model::Protocol::DoubleNbl;
  config.params = model::base_scenario().params.with_overhead(1.0);
  config.params.nodes = 12;
  config.params.mtbf = 500.0;
  config.period = 100.0;
  config.t_base = 5000.0;
  config.stop_on_fatal = false;
  return config;
}

MonteCarloResult quick_result() {
  MonteCarloOptions options;
  options.trials = 30;
  options.threads = 2;
  options.metrics = MetricsSpec{};
  return run_monte_carlo(quick_config(), options);
}

void expect_stats_match(const JsonValue& json,
                        const dckpt::util::RunningStats& stats) {
  EXPECT_DOUBLE_EQ(json.at("count").as_number(),
                   static_cast<double>(stats.count()));
  ASSERT_GT(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(json.at("mean").as_number(), stats.mean());
  EXPECT_DOUBLE_EQ(json.at("stddev").as_number(), stats.stddev());
  EXPECT_DOUBLE_EQ(json.at("min").as_number(), stats.min());
  EXPECT_DOUBLE_EQ(json.at("max").as_number(), stats.max());
}

void expect_histogram_match(const JsonValue& json,
                            const dckpt::util::Histogram& histogram) {
  EXPECT_DOUBLE_EQ(json.at("lo").as_number(), histogram.lo());
  EXPECT_DOUBLE_EQ(json.at("hi").as_number(), histogram.hi());
  EXPECT_EQ(json.at("underflow").as_number(),
            static_cast<double>(histogram.underflow()));
  EXPECT_EQ(json.at("overflow").as_number(),
            static_cast<double>(histogram.overflow()));
  EXPECT_EQ(json.at("nonfinite").as_number(),
            static_cast<double>(histogram.nonfinite()));
  ASSERT_EQ(json.at("counts").size(), histogram.bin_count());
  for (std::size_t i = 0; i < histogram.bin_count(); ++i) {
    EXPECT_DOUBLE_EQ(json.at("counts").items()[i].as_number(),
                     static_cast<double>(histogram.bin(i)))
        << "bin " << i;
  }
}

TEST(ExportTest, MetricsRecordRoundTrip) {
  const auto result = quick_result();
  std::ostringstream out;
  write_metrics_jsonl(out, result);
  const auto docs = parse_jsonl(out.str());
  ASSERT_EQ(docs.size(), 1u);
  const JsonValue& record = docs[0];

  EXPECT_EQ(record.at("record").as_string(), "monte_carlo");
  EXPECT_DOUBLE_EQ(record.at("trials").as_number(), 30.0);
  EXPECT_DOUBLE_EQ(record.at("diverged").as_number(),
                   static_cast<double>(result.diverged));
  expect_stats_match(record.at("waste"), result.waste);
  expect_stats_match(record.at("makespan"), result.makespan);
  expect_stats_match(record.at("failures"), result.failures);
  expect_stats_match(record.at("risk_time"), result.risk_time);
  EXPECT_DOUBLE_EQ(record.at("success").at("estimate").as_number(),
                   result.success.estimate());
  ASSERT_TRUE(record.contains("histograms"));
  ASSERT_TRUE(result.metrics.has_value());
  expect_histogram_match(record.at("histograms").at("waste"),
                         result.metrics->waste);
  expect_histogram_match(record.at("histograms").at("slowdown"),
                         result.metrics->slowdown);
  expect_histogram_match(record.at("histograms").at("failures"),
                         result.metrics->failures);
  expect_histogram_match(record.at("histograms").at("risk_fraction"),
                         result.metrics->risk_fraction);
}

TEST(ExportTest, MetricsRecordOmitsHistogramsWhenDisabled) {
  MonteCarloOptions options;
  options.trials = 10;
  options.threads = 2;
  const auto result = run_monte_carlo(quick_config(), options);
  const JsonValue record = to_json(result);
  EXPECT_FALSE(record.contains("histograms"));
}

TEST(ExportTest, SweepTableRoundTrip) {
  SweepSpec spec;
  spec.protocols = {model::Protocol::DoubleNbl, model::Protocol::Triple};
  spec.mtbfs = {1200.0};
  spec.phi_ratios = {0.25};
  spec.base = model::base_scenario().params;
  spec.base.nodes = 12;
  spec.t_base_in_mtbfs = 10.0;
  spec.trials = 15;
  spec.threads = 2;
  spec.metrics = MetricsSpec{};
  const auto rows = run_sweep(spec);
  ASSERT_EQ(rows.size(), 2u);

  std::ostringstream out;
  write_sweep_jsonl(out, rows);
  const auto docs = parse_jsonl(out.str());
  ASSERT_EQ(docs.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonValue& record = docs[i];
    EXPECT_EQ(record.at("record").as_string(), "sweep_point");
    EXPECT_EQ(record.at("protocol").as_string(),
              model::protocol_name(rows[i].protocol));
    EXPECT_DOUBLE_EQ(record.at("mtbf").as_number(), rows[i].mtbf);
    EXPECT_DOUBLE_EQ(record.at("phi").as_number(), rows[i].phi);
    EXPECT_DOUBLE_EQ(record.at("period").as_number(), rows[i].period);
    EXPECT_DOUBLE_EQ(record.at("model_waste").as_number(),
                     rows[i].model_waste);
    expect_stats_match(record.at("sim").at("waste"), rows[i].result.waste);
    ASSERT_TRUE(rows[i].result.metrics.has_value());
    expect_histogram_match(record.at("sim").at("histograms").at("waste"),
                           rows[i].result.metrics->waste);
  }
}

TEST(ExportTest, TraceRoundTrip) {
  Trace trace(true);
  auto config = quick_config();
  config.t_base = 1000.0;
  simulate_exponential(config, 7, &trace);
  ASSERT_FALSE(trace.events().empty());

  std::ostringstream out;
  write_trace_jsonl(out, trace);
  const auto docs = parse_jsonl(out.str());
  ASSERT_EQ(docs.size(), trace.events().size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    const TraceEvent& event = trace.events()[i];
    EXPECT_EQ(docs[i].at("record").as_string(), "trace_event");
    EXPECT_DOUBLE_EQ(docs[i].at("time").as_number(), event.time);
    const auto kind = parse_trace_kind_id(docs[i].at("kind").as_string());
    ASSERT_TRUE(kind.has_value()) << docs[i].at("kind").as_string();
    EXPECT_EQ(*kind, event.kind);
    EXPECT_DOUBLE_EQ(docs[i].at("node").as_number(),
                     static_cast<double>(event.node));
    EXPECT_DOUBLE_EQ(docs[i].at("work").as_number(), event.work_level);
  }
}

TEST(ExportTest, TraceKindIdsAreStableAndParseable) {
  // Exported ids are a compatibility contract: spot-check the exact strings.
  EXPECT_STREQ(trace_kind_id(TraceKind::Failure), "failure");
  EXPECT_STREQ(trace_kind_id(TraceKind::FatalFailure), "fatal_failure");
  EXPECT_STREQ(trace_kind_id(TraceKind::RiskWindowOpen), "risk_window_open");
  for (auto kind :
       {TraceKind::PeriodStart, TraceKind::LocalCheckpointDone,
        TraceKind::RemoteExchangeDone, TraceKind::PreferredCopyDone,
        TraceKind::Failure, TraceKind::Rollback, TraceKind::DowntimeEnd,
        TraceKind::RecoveryEnd, TraceKind::ReexecutionEnd,
        TraceKind::RiskWindowOpen, TraceKind::RiskWindowClose,
        TraceKind::FatalFailure, TraceKind::ApplicationDone}) {
    const auto parsed = parse_trace_kind_id(trace_kind_id(kind));
    ASSERT_TRUE(parsed.has_value()) << trace_kind_id(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_trace_kind_id("no_such_event").has_value());
}

TEST(ExportTest, SaveFunctionsRejectBadPath) {
  const auto result = quick_result();
  EXPECT_THROW(save_metrics_jsonl("/nonexistent-dir/x.jsonl", result),
               std::runtime_error);
}

// ---------------------------------------------------------- determinism

TEST(ExportTest, HistogramMergeIsThreadCountInvariant) {
  // The chunk count (and therefore the histogram merge order) depends on
  // the thread count; bin counts are integers, so the merged histograms
  // must be bit-identical regardless.
  MonteCarloOptions one;
  one.trials = 64;
  one.threads = 1;
  one.seed = 99;
  one.metrics = MetricsSpec{};
  MonteCarloOptions many = one;
  many.threads = 5;
  const auto a = run_monte_carlo(quick_config(), one);
  const auto b = run_monte_carlo(quick_config(), many);
  ASSERT_TRUE(a.metrics && b.metrics);
  const auto expect_same = [](const dckpt::util::Histogram& ha,
                              const dckpt::util::Histogram& hb) {
    ASSERT_EQ(ha.bin_count(), hb.bin_count());
    for (std::size_t i = 0; i < ha.bin_count(); ++i) {
      EXPECT_EQ(ha.bin(i), hb.bin(i)) << "bin " << i;
    }
    EXPECT_EQ(ha.underflow(), hb.underflow());
    EXPECT_EQ(ha.overflow(), hb.overflow());
    EXPECT_EQ(ha.nonfinite(), hb.nonfinite());
    EXPECT_EQ(ha.total_count(), hb.total_count());
  };
  expect_same(a.metrics->waste, b.metrics->waste);
  expect_same(a.metrics->slowdown, b.metrics->slowdown);
  expect_same(a.metrics->failures, b.metrics->failures);
  expect_same(a.metrics->risk_fraction, b.metrics->risk_fraction);
  // And the serialized histogram blocks agree byte-for-byte.
  EXPECT_EQ(to_json(a).at("histograms").dump(),
            to_json(b).at("histograms").dump());
}

TEST(ExportTest, MetricsJsonlIsThreadCountInvariant) {
  // Full-line determinism, not just histograms: the exported JSONL record
  // (running stats, success counts, everything) must be byte-identical at
  // 1, 2, and 8 threads. Trial i always draws from the same per-trial seed,
  // and merges happen in trial order, so thread count only changes who runs
  // which chunk -- never the numbers.
  std::string reference;
  for (const std::uint64_t threads : {1u, 2u, 8u}) {
    MonteCarloOptions options;
    options.trials = 48;
    options.threads = threads;
    options.seed = 0x5eed;
    options.metrics = MetricsSpec{};
    const auto result = run_monte_carlo(quick_config(), options);
    std::ostringstream out;
    write_metrics_jsonl(out, result);
    if (reference.empty()) {
      reference = out.str();
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(out.str(), reference) << "threads=" << threads;
    }
  }
}

}  // namespace
