#include "model/overlap.hpp"

#include <gtest/gtest.h>

namespace {

using dckpt::model::OverlapModel;

TEST(OverlapModelTest, EndpointsMatchPaper) {
  const OverlapModel overlap(4.0, 10.0);
  // phi = theta_min: fully blocking, theta = theta_min.
  EXPECT_DOUBLE_EQ(overlap.theta_of_phi(4.0), 4.0);
  // phi = 0: fully overlapped, theta = (1 + alpha) * theta_min.
  EXPECT_DOUBLE_EQ(overlap.theta_of_phi(0.0), 44.0);
  EXPECT_DOUBLE_EQ(overlap.theta_max(), 44.0);
}

TEST(OverlapModelTest, LinearInterpolation) {
  const OverlapModel overlap(4.0, 10.0);
  // theta(phi) = theta_min + alpha (theta_min - phi)
  EXPECT_DOUBLE_EQ(overlap.theta_of_phi(2.0), 4.0 + 10.0 * 2.0);
  EXPECT_DOUBLE_EQ(overlap.theta_of_phi(3.0), 4.0 + 10.0 * 1.0);
}

TEST(OverlapModelTest, PhiOfThetaIsInverse) {
  const OverlapModel overlap(60.0, 10.0);
  for (double phi : {0.0, 10.0, 33.3, 59.9, 60.0}) {
    EXPECT_NEAR(overlap.phi_of_theta(overlap.theta_of_phi(phi)), phi, 1e-9);
  }
}

TEST(OverlapModelTest, WorkRateDuringTransfer) {
  const OverlapModel overlap(4.0, 10.0);
  // Fully blocking: zero application progress.
  EXPECT_DOUBLE_EQ(overlap.work_rate_during_transfer(4.0), 0.0);
  // Fully overlapped: full speed.
  EXPECT_DOUBLE_EQ(overlap.work_rate_during_transfer(0.0), 1.0);
  // Intermediate: (theta - phi)/theta in (0, 1).
  const double rate = overlap.work_rate_during_transfer(2.0);
  EXPECT_GT(rate, 0.0);
  EXPECT_LT(rate, 1.0);
}

TEST(OverlapModelTest, WorkRateIsMonotoneInOverlap) {
  const OverlapModel overlap(60.0, 10.0);
  double previous = -1.0;
  for (double phi = 60.0; phi >= 0.0; phi -= 5.0) {
    const double rate = overlap.work_rate_during_transfer(phi);
    EXPECT_GT(rate, previous);
    previous = rate;
  }
}

TEST(OverlapModelTest, AlphaZeroDegenerate) {
  const OverlapModel overlap(4.0, 0.0);
  EXPECT_DOUBLE_EQ(overlap.theta_max(), 4.0);
  EXPECT_DOUBLE_EQ(overlap.theta_of_phi(0.0), 4.0);
  EXPECT_DOUBLE_EQ(overlap.phi_of_theta(4.0), 4.0);
  EXPECT_THROW(overlap.phi_of_theta(5.0), std::invalid_argument);
}

TEST(OverlapModelTest, RejectsOutOfDomain) {
  const OverlapModel overlap(4.0, 10.0);
  EXPECT_THROW(overlap.theta_of_phi(-0.1), std::invalid_argument);
  EXPECT_THROW(overlap.theta_of_phi(4.1), std::invalid_argument);
  EXPECT_THROW(overlap.phi_of_theta(3.9), std::invalid_argument);
  EXPECT_THROW(overlap.phi_of_theta(44.1), std::invalid_argument);
}

TEST(OverlapModelTest, RejectsBadConstruction) {
  EXPECT_THROW(OverlapModel(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(OverlapModel(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(OverlapModel(1.0, -0.5), std::invalid_argument);
}

}  // namespace
