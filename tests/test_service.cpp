// Drives the EvalService directly (no transport): request parsing, answer
// correctness against the model layer, cache-key quantization, error
// records, and the serve_stats counter schema documented in docs/SERVE.md.
#include "sim/service.hpp"

#include <gtest/gtest.h>

#include <string>

#include "model/model_api.hpp"
#include "util/json.hpp"

namespace {

using namespace dckpt;

util::JsonValue respond(sim::EvalService& service, const std::string& line) {
  return util::parse_json(service.handle_line(line));
}

TEST(EvalService, AnswersOptimalPeriod) {
  sim::EvalService service;
  const auto v = respond(
      service, "EVAL kind=period protocol=DoubleNBL mtbf=3600 phi-ratio=0.5");
  EXPECT_EQ(v.at("record").as_string(), "eval");
  EXPECT_EQ(v.at("protocol").as_string(), "DoubleNBL");
  EXPECT_FALSE(v.at("cached").as_bool());
  const auto params =
      model::base_scenario().at_phi_ratio(0.5).with_mtbf(3600.0);
  const auto opt = model::optimal_period_closed_form(
      model::Protocol::DoubleNbl, params);
  EXPECT_DOUBLE_EQ(v.at("period").as_number(), opt.period);
  EXPECT_DOUBLE_EQ(v.at("waste").as_number(), opt.waste);
}

TEST(EvalService, WasteMatchesModel) {
  sim::EvalService service;
  const auto v = respond(
      service,
      "EVAL kind=waste protocol=Triple mtbf=7200 phi-ratio=0.25 period=600");
  const auto params =
      model::base_scenario().at_phi_ratio(0.25).with_mtbf(7200.0);
  EXPECT_DOUBLE_EQ(
      v.at("waste").as_number(),
      model::waste(model::Protocol::Triple, params, 600.0));
}

TEST(EvalService, RiskReportsWindowAndSurvival) {
  sim::EvalService service;
  const auto v = respond(
      service, "EVAL kind=risk protocol=Triple mtbf=3600 mission-hours=48");
  EXPECT_GT(v.at("risk_window").as_number(), 0.0);
  const double survival = v.at("success_probability").as_number();
  EXPECT_GT(survival, 0.0);
  EXPECT_LE(survival, 1.0);
  EXPECT_DOUBLE_EQ(v.at("mission_hours").as_number(), 48.0);
}

TEST(EvalService, SecondIdenticalQueryIsCached) {
  sim::EvalService service;
  const std::string line = "EVAL kind=period protocol=Triple mtbf=3600";
  const auto first = respond(service, line);
  const auto second = respond(service, line);
  EXPECT_FALSE(first.at("cached").as_bool());
  EXPECT_TRUE(second.at("cached").as_bool());
  EXPECT_EQ(first.at("period").as_number(), second.at("period").as_number());
  const auto stats = respond(service, "STATS");
  EXPECT_EQ(stats.at("record").as_string(), "serve_stats");
  EXPECT_EQ(stats.at("cache").at("hits").as_number(), 1.0);
}

TEST(EvalService, QuantizationFoldsParameterNoise) {
  sim::EvalService service;
  (void)respond(service, "EVAL kind=period protocol=Triple mtbf=3600");
  // 1e-7 relative jitter is below the %.6g cache-key resolution.
  const auto jittered = respond(
      service, "EVAL kind=period protocol=Triple mtbf=3600.0003");
  EXPECT_TRUE(jittered.at("cached").as_bool());
}

TEST(EvalService, SimRunsBatchedKernelAndCounts) {
  sim::EvalServiceOptions options;
  options.default_trials = 60;
  // This test asserts batched-kernel occupancy specifically, so pin the
  // engine: under DCKPT_ENGINE=scalar the default would (correctly) leave
  // the kernel counters at zero.
  options.engine = sim::SimEngine::kBatched;
  sim::EvalService service(options);
  const auto v = respond(service,
                         "EVAL kind=sim protocol=DoubleNBL scenario=base "
                         "mtbf=900 nodes=12 tbase=5000 period=100");
  ASSERT_EQ(v.at("record").as_string(), "eval") << service.handle_line(
      "EVAL kind=sim mtbf=900 nodes=12 tbase=5000 period=100");
  EXPECT_EQ(v.at("trials").as_number(), 60.0);
  const double waste = v.at("waste_mean").as_number();
  EXPECT_GT(waste, 0.0);
  EXPECT_LT(waste, 1.0);
  EXPECT_GT(service.kernel_stats().lanes, 0u);
  const auto stats = respond(service, "STATS");
  EXPECT_EQ(stats.at("sim_trials").as_number(), 60.0);
  EXPECT_GT(stats.at("kernel").at("occupancy").as_number(), 0.0);
}

TEST(EvalService, SimResultsAreCachedBySeed) {
  sim::EvalServiceOptions options;
  options.default_trials = 40;
  sim::EvalService service(options);
  const std::string line =
      "EVAL kind=sim protocol=Triple mtbf=900 nodes=12 tbase=4000 "
      "period=90 seed=7";
  const auto first = respond(service, line);
  const auto second = respond(service, line);
  EXPECT_FALSE(first.at("cached").as_bool());
  EXPECT_TRUE(second.at("cached").as_bool());
  // The cached answer replays; the kernel must not have run twice.
  const auto stats = respond(service, "STATS");
  EXPECT_EQ(stats.at("sim_trials").as_number(), 40.0);
}

TEST(EvalService, ErrorsAreRecordsNotThrows) {
  sim::EvalService service;
  EXPECT_EQ(respond(service, "EVAL kind=nonsense").at("record").as_string(),
            "eval_error");
  EXPECT_EQ(respond(service, "EVAL protocol=Triple").at("record").as_string(),
            "eval_error");
  EXPECT_EQ(respond(service, "EVAL kind=waste mtbf=banana")
                .at("record")
                .as_string(),
            "eval_error");
  EXPECT_EQ(respond(service, "FROBNICATE").at("record").as_string(),
            "eval_error");
  EXPECT_EQ(
      respond(service, "EVAL kind=sim trials=999999999").at("record").as_string(),
      "eval_error");
  const auto stats = respond(service, "STATS");
  EXPECT_EQ(stats.at("errors").as_number(), 5.0);
  EXPECT_EQ(stats.at("requests").as_number(), 6.0);
}

TEST(EvalService, QuitYieldsByeRecord) {
  sim::EvalService service;
  EXPECT_EQ(respond(service, "QUIT").at("record").as_string(), "bye");
}

TEST(EvalService, StatsLatencyAppearsAfterRequests) {
  sim::EvalService service;
  (void)respond(service, "EVAL kind=period protocol=Triple mtbf=3600");
  const auto stats = respond(service, "STATS");
  const auto& latency = stats.at("latency");
  EXPECT_GE(latency.at("count").as_number(), 1.0);
  EXPECT_GE(latency.at("p99_us").as_number(), latency.at("p50_us").as_number());
  EXPECT_GE(latency.at("p50_us").as_number(), 0.0);
}

TEST(EvalService, OptionsAreValidated) {
  sim::EvalServiceOptions zero_cache;
  zero_cache.cache_capacity = 0;
  EXPECT_THROW(sim::EvalService{zero_cache}, std::invalid_argument);
  sim::EvalServiceOptions bad_trials;
  bad_trials.default_trials = 100;
  bad_trials.max_trials = 10;
  EXPECT_THROW(sim::EvalService{bad_trials}, std::invalid_argument);
}

}  // namespace
