// Drives the EvalService directly (no transport): request parsing, answer
// correctness against the model layer, cache-key quantization, error
// records, and the serve_stats counter schema documented in docs/SERVE.md.
#include "sim/service.hpp"

#include <gtest/gtest.h>

#include <string>

#include "model/model_api.hpp"
#include "util/json.hpp"

namespace {

using namespace dckpt;

util::JsonValue respond(sim::EvalService& service, const std::string& line) {
  return util::parse_json(service.handle_line(line));
}

TEST(EvalService, AnswersOptimalPeriod) {
  sim::EvalService service;
  const auto v = respond(
      service, "EVAL kind=period protocol=DoubleNBL mtbf=3600 phi-ratio=0.5");
  EXPECT_EQ(v.at("record").as_string(), "eval");
  EXPECT_EQ(v.at("protocol").as_string(), "DoubleNBL");
  EXPECT_FALSE(v.at("cached").as_bool());
  const auto params =
      model::base_scenario().at_phi_ratio(0.5).with_mtbf(3600.0);
  const auto opt = model::optimal_period_closed_form(
      model::Protocol::DoubleNbl, params);
  EXPECT_DOUBLE_EQ(v.at("period").as_number(), opt.period);
  EXPECT_DOUBLE_EQ(v.at("waste").as_number(), opt.waste);
}

TEST(EvalService, WasteMatchesModel) {
  sim::EvalService service;
  const auto v = respond(
      service,
      "EVAL kind=waste protocol=Triple mtbf=7200 phi-ratio=0.25 period=600");
  const auto params =
      model::base_scenario().at_phi_ratio(0.25).with_mtbf(7200.0);
  EXPECT_DOUBLE_EQ(
      v.at("waste").as_number(),
      model::waste(model::Protocol::Triple, params, 600.0));
}

TEST(EvalService, RiskReportsWindowAndSurvival) {
  sim::EvalService service;
  const auto v = respond(
      service, "EVAL kind=risk protocol=Triple mtbf=3600 mission-hours=48");
  EXPECT_GT(v.at("risk_window").as_number(), 0.0);
  const double survival = v.at("success_probability").as_number();
  EXPECT_GT(survival, 0.0);
  EXPECT_LE(survival, 1.0);
  EXPECT_DOUBLE_EQ(v.at("mission_hours").as_number(), 48.0);
}

TEST(EvalService, SecondIdenticalQueryIsCached) {
  sim::EvalService service;
  const std::string line = "EVAL kind=period protocol=Triple mtbf=3600";
  const auto first = respond(service, line);
  const auto second = respond(service, line);
  EXPECT_FALSE(first.at("cached").as_bool());
  EXPECT_TRUE(second.at("cached").as_bool());
  EXPECT_EQ(first.at("period").as_number(), second.at("period").as_number());
  const auto stats = respond(service, "STATS");
  EXPECT_EQ(stats.at("record").as_string(), "serve_stats");
  EXPECT_EQ(stats.at("cache").at("hits").as_number(), 1.0);
}

TEST(EvalService, QuantizationFoldsParameterNoise) {
  sim::EvalService service;
  (void)respond(service, "EVAL kind=period protocol=Triple mtbf=3600");
  // 1e-7 relative jitter is below the %.6g cache-key resolution.
  const auto jittered = respond(
      service, "EVAL kind=period protocol=Triple mtbf=3600.0003");
  EXPECT_TRUE(jittered.at("cached").as_bool());
}

TEST(EvalService, SimRunsBatchedKernelAndCounts) {
  sim::EvalServiceOptions options;
  options.default_trials = 60;
  // This test asserts batched-kernel occupancy specifically, so pin the
  // engine: under DCKPT_ENGINE=scalar the default would (correctly) leave
  // the kernel counters at zero.
  options.engine = sim::SimEngine::kBatched;
  sim::EvalService service(options);
  const auto v = respond(service,
                         "EVAL kind=sim protocol=DoubleNBL scenario=base "
                         "mtbf=900 nodes=12 tbase=5000 period=100");
  ASSERT_EQ(v.at("record").as_string(), "eval") << service.handle_line(
      "EVAL kind=sim mtbf=900 nodes=12 tbase=5000 period=100");
  EXPECT_EQ(v.at("trials").as_number(), 60.0);
  const double waste = v.at("waste_mean").as_number();
  EXPECT_GT(waste, 0.0);
  EXPECT_LT(waste, 1.0);
  EXPECT_GT(service.kernel_stats().lanes, 0u);
  const auto stats = respond(service, "STATS");
  EXPECT_EQ(stats.at("sim_trials").as_number(), 60.0);
  EXPECT_GT(stats.at("kernel").at("occupancy").as_number(), 0.0);
}

TEST(EvalService, SimResultsAreCachedBySeed) {
  sim::EvalServiceOptions options;
  options.default_trials = 40;
  sim::EvalService service(options);
  const std::string line =
      "EVAL kind=sim protocol=Triple mtbf=900 nodes=12 tbase=4000 "
      "period=90 seed=7";
  const auto first = respond(service, line);
  const auto second = respond(service, line);
  EXPECT_FALSE(first.at("cached").as_bool());
  EXPECT_TRUE(second.at("cached").as_bool());
  // The cached answer replays; the kernel must not have run twice.
  const auto stats = respond(service, "STATS");
  EXPECT_EQ(stats.at("sim_trials").as_number(), 40.0);
}

TEST(EvalService, ErrorsAreRecordsNotThrows) {
  sim::EvalService service;
  EXPECT_EQ(respond(service, "EVAL kind=nonsense").at("record").as_string(),
            "eval_error");
  EXPECT_EQ(respond(service, "EVAL protocol=Triple").at("record").as_string(),
            "eval_error");
  EXPECT_EQ(respond(service, "EVAL kind=waste mtbf=banana")
                .at("record")
                .as_string(),
            "eval_error");
  EXPECT_EQ(respond(service, "FROBNICATE").at("record").as_string(),
            "eval_error");
  EXPECT_EQ(
      respond(service, "EVAL kind=sim trials=999999999").at("record").as_string(),
      "eval_error");
  const auto stats = respond(service, "STATS");
  EXPECT_EQ(stats.at("errors").as_number(), 5.0);
  EXPECT_EQ(stats.at("requests").as_number(), 6.0);
}

TEST(EvalService, ErrorRecordsCarryTypedCodes) {
  sim::EvalService service;
  // Taxonomy documented in docs/SERVE.md: every eval_error names a machine
  // readable code so clients can branch without string-matching messages.
  EXPECT_EQ(respond(service, "EVAL kind=nonsense").at("code").as_string(),
            "parse");
  EXPECT_EQ(respond(service, "FROBNICATE").at("code").as_string(), "parse");
  EXPECT_EQ(respond(service, "EVAL kind=sim trials=999999999")
                .at("code")
                .as_string(),
            "limit");
  EXPECT_EQ(respond(service, "EVAL kind=sim nodes=999999")
                .at("code")
                .as_string(),
            "limit");
}

TEST(EvalService, RejectsNonFiniteAndNonCastableNumerics) {
  sim::EvalService service;
  // A negative double cast to an unsigned is UB; nan/inf pass std::stod.
  // All of these must come back as typed parse errors, never as garbage
  // answers or sanitizer traps.
  const char* bad[] = {
      "EVAL kind=sim protocol=Triple mtbf=900 tbase=4000 period=90 seed=-1",
      "EVAL kind=sim protocol=Triple mtbf=900 tbase=4000 period=90 trials=nan",
      "EVAL kind=period protocol=Triple mtbf=inf",
      "EVAL kind=period protocol=Triple mtbf=-inf",
      "EVAL kind=waste protocol=Triple mtbf=3600 period=nan",
      "EVAL kind=sim protocol=Triple mtbf=900 tbase=4000 period=90 trials=-5",
      "EVAL kind=sim protocol=Triple mtbf=900 tbase=4000 period=90 "
      "nodes=1e300",
      "EVAL kind=waste protocol=Triple mtbf=3600 period=-10",
  };
  for (const char* line : bad) {
    const auto v = respond(service, line);
    EXPECT_EQ(v.at("record").as_string(), "eval_error") << line;
    EXPECT_EQ(v.at("code").as_string(), "parse") << line;
  }
}

TEST(EvalService, ClassifiesRequestsForAdmissionControl) {
  sim::EvalServiceOptions options;
  options.default_trials = 20;
  sim::EvalService service(options);
  using RequestClass = sim::EvalService::RequestClass;
  // Closed-form kinds, malformed lines, and non-EVAL verbs are light: the
  // transport answers them inline and only uncached sims hit the bounded
  // queue.
  EXPECT_EQ(service.classify_line("EVAL kind=period protocol=Triple mtbf=3600"),
            RequestClass::kLight);
  EXPECT_EQ(service.classify_line("STATS"), RequestClass::kLight);
  EXPECT_EQ(service.classify_line("EVAL kind=banana"), RequestClass::kLight);
  EXPECT_EQ(service.classify_line("EVAL kind=sim trials=nan"),
            RequestClass::kLight);
  const std::string sim_request =
      "EVAL kind=sim protocol=Triple mtbf=900 nodes=12 tbase=4000 "
      "period=90 seed=3";
  EXPECT_EQ(service.classify_line(sim_request), RequestClass::kHeavy);
  (void)respond(service, sim_request);
  // Once answered it is cached, hence light -- and the classification
  // probe itself must not have perturbed the hit/miss counters.
  EXPECT_EQ(service.classify_line(sim_request), RequestClass::kLight);
  const auto stats = respond(service, "STATS");
  EXPECT_EQ(stats.at("cache").at("hits").as_number(), 0.0);
}

TEST(EvalService, StatsCarryServerCountersFromTransport) {
  sim::EvalService service;
  // Without a transport the server block is all zeros (stdin mode)...
  const auto idle = respond(service, "STATS");
  EXPECT_EQ(idle.at("server").at("shed").as_number(), 0.0);
  EXPECT_EQ(idle.at("server").at("accepted").as_number(), 0.0);
  // ...and with one registered, STATS mirrors the live counters.
  sim::ServerCounters counters;
  counters.accepted = 3;
  counters.shed = 2;
  counters.overlong_lines = 1;
  counters.peak_connections = 3;
  service.set_transport_counters(&counters);
  const auto live = respond(service, "STATS");
  EXPECT_EQ(live.at("server").at("accepted").as_number(), 3.0);
  EXPECT_EQ(live.at("server").at("shed").as_number(), 2.0);
  EXPECT_EQ(live.at("server").at("overlong_lines").as_number(), 1.0);
  service.set_transport_counters(nullptr);
  const auto detached = respond(service, "STATS");
  EXPECT_EQ(detached.at("server").at("accepted").as_number(), 0.0);
}

TEST(EvalService, QuitYieldsByeRecord) {
  sim::EvalService service;
  EXPECT_EQ(respond(service, "QUIT").at("record").as_string(), "bye");
}

TEST(EvalService, StatsLatencyAppearsAfterRequests) {
  sim::EvalService service;
  (void)respond(service, "EVAL kind=period protocol=Triple mtbf=3600");
  const auto stats = respond(service, "STATS");
  const auto& latency = stats.at("latency");
  EXPECT_GE(latency.at("count").as_number(), 1.0);
  EXPECT_GE(latency.at("p99_us").as_number(), latency.at("p50_us").as_number());
  EXPECT_GE(latency.at("p50_us").as_number(), 0.0);
}

TEST(EvalService, OptionsAreValidated) {
  sim::EvalServiceOptions zero_cache;
  zero_cache.cache_capacity = 0;
  EXPECT_THROW(sim::EvalService{zero_cache}, std::invalid_argument);
  sim::EvalServiceOptions bad_trials;
  bad_trials.default_trials = 100;
  bad_trials.max_trials = 10;
  EXPECT_THROW(sim::EvalService{bad_trials}, std::invalid_argument);
}

}  // namespace
