#include "model/scenario.hpp"

#include <gtest/gtest.h>

namespace {

using namespace dckpt::model;

TEST(ScenarioTest, BaseMatchesTableOne) {
  const auto s = base_scenario();
  EXPECT_EQ(s.name, "Base");
  EXPECT_DOUBLE_EQ(s.params.downtime, 0.0);
  EXPECT_DOUBLE_EQ(s.params.local_ckpt, 2.0);
  EXPECT_DOUBLE_EQ(s.params.remote_blocking, 4.0);
  EXPECT_DOUBLE_EQ(s.params.alpha, 10.0);
  EXPECT_EQ(s.params.nodes, 324ULL * 32ULL);
  EXPECT_DOUBLE_EQ(s.phi_max, 4.0);
}

TEST(ScenarioTest, ExaMatchesTableOne) {
  const auto s = exa_scenario();
  EXPECT_EQ(s.name, "Exa");
  EXPECT_DOUBLE_EQ(s.params.downtime, 60.0);
  EXPECT_DOUBLE_EQ(s.params.local_ckpt, 30.0);
  EXPECT_DOUBLE_EQ(s.params.remote_blocking, 60.0);
  EXPECT_DOUBLE_EQ(s.params.alpha, 10.0);
  EXPECT_EQ(s.params.nodes, 1000000ULL);
  EXPECT_DOUBLE_EQ(s.phi_max, 60.0);
}

TEST(ScenarioTest, DefaultMtbfIsSevenHours) {
  EXPECT_DOUBLE_EQ(base_scenario().default_mtbf, 7.0 * 3600.0);
  EXPECT_DOUBLE_EQ(exa_scenario().default_mtbf, 7.0 * 3600.0);
}

TEST(ScenarioTest, PhiRatioSweep) {
  const auto s = base_scenario();
  EXPECT_DOUBLE_EQ(s.at_phi_ratio(0.0).overhead, 0.0);
  EXPECT_DOUBLE_EQ(s.at_phi_ratio(0.5).overhead, 2.0);
  EXPECT_DOUBLE_EQ(s.at_phi_ratio(1.0).overhead, 4.0);
  EXPECT_THROW(s.at_phi_ratio(-0.1), std::invalid_argument);
  EXPECT_THROW(s.at_phi_ratio(1.1), std::invalid_argument);
}

TEST(ScenarioTest, PaperScenariosListsBoth) {
  const auto all = paper_scenarios();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name, "Base");
  EXPECT_EQ(all[1].name, "Exa");
}

TEST(ScenarioTest, ScenarioParamsValidate) {
  for (const auto& s : paper_scenarios()) {
    EXPECT_NO_THROW(s.params.validate()) << s.name;
    EXPECT_NO_THROW(s.at_phi_ratio(1.0).validate()) << s.name;
  }
}

TEST(HardwareSpecTest, DerivesBaseLikeNumbers) {
  HardwareSpec spec;
  spec.checkpoint_bytes = 512.0 * 1024 * 1024;
  spec.local_bandwidth = 256.0 * 1024 * 1024;    // ~SSD: 2 s local ckpt
  spec.network_bandwidth = 128.0 * 1024 * 1024;  // 4 s remote upload
  spec.nodes = 324 * 32;
  spec.node_mtbf_years = 10.0;
  const auto p = spec.derive();
  EXPECT_DOUBLE_EQ(p.local_ckpt, 2.0);
  EXPECT_DOUBLE_EQ(p.remote_blocking, 4.0);
  EXPECT_EQ(p.nodes, 324ULL * 32ULL);
  // Platform MTBF = node MTBF / n.
  EXPECT_NEAR(p.mtbf, 10.0 * 365.25 * 86400.0 / (324.0 * 32.0), 1e-6);
}

TEST(HardwareSpecTest, RejectsBadSpecs) {
  HardwareSpec spec;
  spec.local_bandwidth = 0.0;
  EXPECT_THROW(spec.derive(), std::invalid_argument);
  spec = HardwareSpec{};
  spec.nodes = 1;
  EXPECT_THROW(spec.derive(), std::invalid_argument);
  spec = HardwareSpec{};
  spec.node_mtbf_years = -2.0;
  EXPECT_THROW(spec.derive(), std::invalid_argument);
}

}  // namespace
