#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include "model/scenario.hpp"

namespace {

using namespace dckpt;
using namespace dckpt::sim;

SweepSpec small_spec() {
  SweepSpec spec;
  spec.protocols = {model::Protocol::DoubleNbl, model::Protocol::Triple};
  spec.mtbfs = {1200.0, 4800.0};
  spec.phi_ratios = {0.25, 1.0};
  spec.base = model::base_scenario().params;
  spec.base.nodes = 12;
  spec.t_base_in_mtbfs = 10.0;
  spec.trials = 20;
  spec.threads = 2;
  return spec;
}

TEST(SweepTest, ProducesOneRowPerFeasiblePoint) {
  const auto rows = run_sweep(small_spec());
  ASSERT_EQ(rows.size(), 8u);  // 2 protocols x 2 MTBFs x 2 ratios
  for (const auto& row : rows) {
    EXPECT_GT(row.period, 0.0);
    EXPECT_GT(row.model_waste, 0.0);
    EXPECT_LT(row.model_waste, 1.0);
    EXPECT_EQ(row.result.waste.count(), 20u);
  }
}

TEST(SweepTest, OrderIsLexicographic) {
  const auto rows = run_sweep(small_spec());
  ASSERT_EQ(rows.size(), 8u);
  EXPECT_EQ(rows[0].protocol, model::Protocol::DoubleNbl);
  EXPECT_DOUBLE_EQ(rows[0].mtbf, 1200.0);
  EXPECT_DOUBLE_EQ(rows[0].phi, 0.25 * 4.0);
  EXPECT_DOUBLE_EQ(rows[1].phi, 4.0);
  EXPECT_DOUBLE_EQ(rows[2].mtbf, 4800.0);
  EXPECT_EQ(rows[4].protocol, model::Protocol::Triple);
}

TEST(SweepTest, SimTracksModelAcrossTheGrid) {
  for (const auto& row : run_sweep(small_spec())) {
    EXPECT_NEAR(row.result.waste.mean(), row.model_waste,
                0.15 * row.model_waste +
                    3.0 * row.result.waste.standard_error())
        << model::protocol_name(row.protocol) << " M=" << row.mtbf
        << " phi=" << row.phi;
  }
}

TEST(SweepTest, InfeasiblePointsAreSkipped) {
  auto spec = small_spec();
  spec.mtbfs = {10.0, 1200.0};  // 10 s: no protocol makes progress
  const auto rows = run_sweep(spec);
  EXPECT_EQ(rows.size(), 4u);
  for (const auto& row : rows) EXPECT_DOUBLE_EQ(row.mtbf, 1200.0);
}

TEST(SweepTest, CustomPeriodFunctionIsUsed) {
  auto spec = small_spec();
  spec.mtbfs = {1200.0};
  spec.phi_ratios = {0.25};
  spec.period = [](model::Protocol, const model::Parameters&) {
    return 250.0;
  };
  const auto rows = run_sweep(spec);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) EXPECT_DOUBLE_EQ(row.period, 250.0);
}

TEST(SweepTest, ProgressCallbackReportsEveryPoint) {
  auto spec = small_spec();
  std::size_t calls = 0;
  std::uint64_t last_trials = 0;
  spec.progress = [&](const SweepProgress& p) {
    ++calls;
    EXPECT_EQ(p.points_total, 8u);
    EXPECT_EQ(p.points_done + p.points_skipped, calls);
    EXPECT_GE(p.elapsed, 0.0);
    EXPECT_GE(p.point_elapsed, 0.0);
    EXPECT_GE(p.trials_done, last_trials);
    last_trials = p.trials_done;
    ASSERT_NE(p.point, nullptr);  // every point of this grid is feasible
    EXPECT_EQ(p.point->result.waste.count(), 20u);
  };
  const auto rows = run_sweep(spec);
  EXPECT_EQ(calls, 8u);
  EXPECT_EQ(rows.size(), 8u);
  EXPECT_EQ(last_trials, 8u * 20u);
}

TEST(SweepTest, ProgressReportsSkippedPoints) {
  auto spec = small_spec();
  spec.mtbfs = {10.0, 1200.0};  // 10 s: every protocol stalls
  std::size_t skipped = 0;
  spec.progress = [&](const SweepProgress& p) {
    skipped = p.points_skipped;
    if (p.point == nullptr) {
      EXPECT_GT(p.points_skipped, 0u);
    }
  };
  run_sweep(spec);
  EXPECT_EQ(skipped, 4u);
}

TEST(SweepTest, MetricsSpecPropagatesToEveryPoint) {
  auto spec = small_spec();
  spec.metrics = MetricsSpec{};
  for (const auto& row : run_sweep(spec)) {
    ASSERT_TRUE(row.result.metrics.has_value());
    EXPECT_EQ(row.result.metrics->waste.total_count(),
              row.result.waste.count());
  }
}

TEST(SweepTest, DeterministicAcrossRuns) {
  const auto a = run_sweep(small_spec());
  const auto b = run_sweep(small_spec());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].result.waste.mean(), b[i].result.waste.mean());
  }
}

}  // namespace
