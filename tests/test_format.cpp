#include "util/format.hpp"

#include <gtest/gtest.h>

namespace {

using namespace dckpt::util;

TEST(FormatDurationTest, PicksNaturalUnits) {
  EXPECT_EQ(format_duration(0.0), "0s");
  EXPECT_EQ(format_duration(42.0), "42s");
  EXPECT_EQ(format_duration(60.0), "1min");
  EXPECT_EQ(format_duration(90.0), "1.5min");
  EXPECT_EQ(format_duration(3600.0), "1h");
  EXPECT_EQ(format_duration(4.0 * 3600.0), "4h");
  EXPECT_EQ(format_duration(86400.0), "1day");
  EXPECT_EQ(format_duration(0.25), "250ms");
}

TEST(FormatDurationTest, SubMillisecond) {
  EXPECT_EQ(format_duration(0.0001), "0.1ms");
}

TEST(FormatPercentTest, DecimalsAndValues) {
  EXPECT_EQ(format_percent(0.123), "12.3%");
  EXPECT_EQ(format_percent(0.5, 0), "50%");
  EXPECT_EQ(format_percent(1.0, 2), "100.00%");
}

TEST(FormatFixedTest, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
}

TEST(FormatScientificTest, SignificantDigits) {
  EXPECT_EQ(format_scientific(0.000123, 3), "1.23e-04");
  EXPECT_EQ(format_scientific(12345.0, 2), "1.2e+04");
}

TEST(FormatBytesTest, BinaryUnits) {
  EXPECT_EQ(format_bytes(512.0), "512 B");
  EXPECT_EQ(format_bytes(1024.0), "1 KiB");
  EXPECT_EQ(format_bytes(512.0 * 1024 * 1024), "512 MiB");
  EXPECT_EQ(format_bytes(1.5 * 1024 * 1024 * 1024), "1.5 GiB");
}

}  // namespace
