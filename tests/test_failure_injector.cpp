#include "sim/failure_injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/stats.hpp"

namespace {

using namespace dckpt::sim;
using dckpt::util::Exponential;
using dckpt::util::RunningStats;
using dckpt::util::Weibull;
using dckpt::util::Xoshiro256ss;

TEST(PlatformExponentialTest, TimesAreStrictlyIncreasing) {
  PlatformExponentialInjector injector(10.0, 100, Xoshiro256ss(1));
  double previous = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const auto event = injector.peek();
    EXPECT_GT(event.time, previous);
    previous = event.time;
    injector.pop();
  }
}

TEST(PlatformExponentialTest, PeekIsIdempotent) {
  PlatformExponentialInjector injector(10.0, 100, Xoshiro256ss(2));
  const auto a = injector.peek();
  const auto b = injector.peek();
  EXPECT_DOUBLE_EQ(a.time, b.time);
  EXPECT_EQ(a.node, b.node);
}

TEST(PlatformExponentialTest, InterArrivalMeanMatchesMtbf) {
  const double mtbf = 42.0;
  PlatformExponentialInjector injector(mtbf, 8, Xoshiro256ss(3));
  RunningStats gaps;
  double previous = 0.0;
  for (int i = 0; i < 200000; ++i) {
    const auto event = injector.peek();
    gaps.add(event.time - previous);
    previous = event.time;
    injector.pop();
  }
  EXPECT_NEAR(gaps.mean(), mtbf, 6.0 * gaps.standard_error());
}

TEST(PlatformExponentialTest, NodesAreUniform) {
  constexpr std::uint64_t kNodes = 10;
  PlatformExponentialInjector injector(1.0, kNodes, Xoshiro256ss(4));
  std::vector<int> hits(kNodes, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++hits[injector.peek().node];
    injector.pop();
  }
  for (std::uint64_t node = 0; node < kNodes; ++node) {
    EXPECT_NEAR(hits[node], kDraws / kNodes, 600) << "node " << node;
  }
}

TEST(PlatformExponentialTest, ReplacementIsANoop) {
  PlatformExponentialInjector a(5.0, 4, Xoshiro256ss(5));
  PlatformExponentialInjector b(5.0, 4, Xoshiro256ss(5));
  for (int i = 0; i < 100; ++i) {
    const auto ea = a.peek();
    a.pop();
    a.on_node_replaced(ea.node, ea.time, ea.time + 1.0);
    const auto eb = b.peek();
    b.pop();
    EXPECT_DOUBLE_EQ(ea.time, eb.time);
  }
}

TEST(PlatformExponentialTest, RejectsBadConstruction) {
  EXPECT_THROW(PlatformExponentialInjector(0.0, 4, Xoshiro256ss(6)),
               std::invalid_argument);
  EXPECT_THROW(PlatformExponentialInjector(1.0, 0, Xoshiro256ss(6)),
               std::invalid_argument);
}

TEST(PerNodeInjectorTest, TimesAreNonDecreasingAcrossNodes) {
  const auto dist = Exponential::from_mean(100.0);
  PerNodeInjector injector(dist, 16, Xoshiro256ss(7));
  double previous = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const auto event = injector.peek();
    EXPECT_GE(event.time, previous);
    EXPECT_LT(event.node, 16u);
    previous = event.time;
    injector.pop();
  }
}

TEST(PerNodeInjectorTest, ExponentialMatchesPlatformRate) {
  // Superposition: n exponential(mean n*M) streams == platform rate 1/M.
  const double platform_mtbf = 25.0;
  const std::uint64_t n = 32;
  const auto dist =
      Exponential::from_mean(platform_mtbf * static_cast<double>(n));
  PerNodeInjector injector(dist, n, Xoshiro256ss(8));
  RunningStats gaps;
  double previous = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const auto event = injector.peek();
    gaps.add(event.time - previous);
    previous = event.time;
    injector.pop();
  }
  EXPECT_NEAR(gaps.mean(), platform_mtbf, 6.0 * gaps.standard_error());
}

TEST(PerNodeInjectorTest, RebirthReschedulesNode) {
  const auto dist = Exponential::from_mean(50.0);
  PerNodeInjector injector(dist, 4, Xoshiro256ss(9));
  const auto first = injector.peek();
  injector.pop();
  // Replace the failed node far in the future; its next failure must not
  // precede the rebirth time.
  const double rebirth = first.time + 500.0;
  injector.on_node_replaced(first.node, first.time, rebirth);
  for (int i = 0; i < 10000; ++i) {
    const auto event = injector.peek();
    if (event.node == first.node) {
      EXPECT_GT(event.time, rebirth);
      return;
    }
    injector.pop();
  }
  FAIL() << "replaced node never failed again";
}

TEST(PerNodeInjectorTest, WeibullStreamsHaveRequestedMean) {
  const auto dist = Weibull::from_mean(0.7, 500.0);
  PerNodeInjector injector(dist, 1, Xoshiro256ss(10));
  RunningStats gaps;
  double previous = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const auto event = injector.peek();
    gaps.add(event.time - previous);
    previous = event.time;
    injector.pop();
  }
  EXPECT_NEAR(gaps.mean(), 500.0, 6.0 * gaps.standard_error());
}

TEST(PerNodeInjectorTest, RejectsZeroNodes) {
  const auto dist = Exponential::from_mean(1.0);
  EXPECT_THROW(PerNodeInjector(dist, 0, Xoshiro256ss(11)),
               std::invalid_argument);
  EXPECT_THROW(PerNodeInjector({}, Xoshiro256ss(11)), std::invalid_argument);
}

TEST(HeterogeneousInjectorTest, LemonNodeDominatesFailures) {
  // Node 0 has 100x worse MTBF than the other 7: it must account for the
  // overwhelming majority of failures.
  std::vector<std::unique_ptr<dckpt::util::Distribution>> laws;
  laws.push_back(
      std::make_unique<Exponential>(Exponential::from_mean(100.0)));
  for (int i = 0; i < 7; ++i) {
    laws.push_back(
        std::make_unique<Exponential>(Exponential::from_mean(10000.0)));
  }
  PerNodeInjector injector(std::move(laws), Xoshiro256ss(13));
  int lemon = 0, total = 0;
  for (; total < 5000; ++total) {
    if (injector.peek().node == 0) ++lemon;
    injector.pop();
  }
  EXPECT_GT(static_cast<double>(lemon) / total, 0.85);
}

TEST(HeterogeneousInjectorTest, AggregateRateMatchesSumOfRates) {
  // Rates 1/100 + 3 * 1/300 = 0.02 -> mean platform gap 50.
  std::vector<std::unique_ptr<dckpt::util::Distribution>> laws;
  laws.push_back(
      std::make_unique<Exponential>(Exponential::from_mean(100.0)));
  for (int i = 0; i < 3; ++i) {
    laws.push_back(
        std::make_unique<Exponential>(Exponential::from_mean(300.0)));
  }
  PerNodeInjector injector(std::move(laws), Xoshiro256ss(14));
  RunningStats gaps;
  double previous = 0.0;
  for (int i = 0; i < 60000; ++i) {
    const auto event = injector.peek();
    gaps.add(event.time - previous);
    previous = event.time;
    injector.pop();
  }
  EXPECT_NEAR(gaps.mean(), 50.0, 6.0 * gaps.standard_error());
}

TEST(HeterogeneousInjectorTest, NullLawRejected) {
  std::vector<std::unique_ptr<dckpt::util::Distribution>> laws;
  laws.push_back(nullptr);
  EXPECT_THROW(PerNodeInjector(std::move(laws), Xoshiro256ss(15)),
               std::invalid_argument);
}

}  // namespace
