// Integration tests: the discrete-event simulator must reproduce the
// analytical model (waste and risk) in the regimes where the first-order
// derivation holds. This is the cross-validation the paper performs between
// its formulas and "comprehensive simulations".
#include <gtest/gtest.h>

#include <cmath>

#include "model/model_api.hpp"
#include "sim/runner.hpp"

namespace {

using namespace dckpt::model;
using namespace dckpt::sim;

SimConfig config_for(Protocol protocol, double phi, double mtbf,
                     double t_base) {
  SimConfig config;
  config.protocol = protocol;
  config.params = base_scenario().params.with_overhead(phi).with_mtbf(mtbf);
  config.params.nodes = 12;
  config.period = optimal_period_closed_form(protocol, config.params).period;
  config.t_base = t_base;
  config.stop_on_fatal = false;  // waste statistics ignore fatality
  return config;
}

MonteCarloResult monte_carlo(const SimConfig& config, std::uint64_t trials,
                             std::uint64_t seed = 0xabc) {
  MonteCarloOptions options;
  options.trials = trials;
  options.threads = 2;
  options.seed = seed;
  return run_monte_carlo(config, options);
}

class SimVsModelWaste : public ::testing::TestWithParam<Protocol> {};

TEST_P(SimVsModelWaste, MonteCarloWasteTracksModel) {
  const Protocol protocol = GetParam();
  const auto config = config_for(protocol, 1.0, 2000.0, 50000.0);
  const double model_waste =
      waste(protocol, config.params, config.period);
  const auto mc = monte_carlo(config, 80);
  ASSERT_EQ(mc.diverged, 0u);
  const double sim_waste = mc.waste.mean();
  // First-order model vs exact simulation: agree within 12% relative
  // (and the Monte-Carlo CI must not exclude that band).
  EXPECT_NEAR(sim_waste, model_waste,
              0.12 * model_waste + 3.0 * mc.waste.standard_error())
      << protocol_name(protocol) << " model=" << model_waste
      << " sim=" << sim_waste;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SimVsModelWaste,
                         ::testing::Values(Protocol::DoubleBlocking,
                                           Protocol::DoubleNbl,
                                           Protocol::DoubleBof,
                                           Protocol::Triple,
                                           Protocol::TripleBof));

TEST(SimVsModelTest, FaultFreeLimitExactAtHugeMtbf) {
  for (Protocol protocol : kPaperProtocols) {
    auto config = config_for(protocol, 1.0, 1e12, 20000.0);
    config.period = 200.0;
    const auto mc = monte_carlo(config, 3);
    const double ff = waste_fault_free(protocol, config.params, 200.0);
    // No failures at M = 1e12: the only deviation is the final partial
    // period, bounded by P/t_makespan.
    EXPECT_NEAR(mc.waste.mean(), ff, 200.0 / 20000.0)
        << protocol_name(protocol);
  }
}

TEST(SimVsModelTest, WasteShapeTripleBeatsNblAtLowOverhead) {
  // Fig. 5's headline in simulation: at phi/R = 0.1, Triple's waste is well
  // below DoubleNBL's; at phi/R = 1 it is above.
  const auto low_nbl = monte_carlo(config_for(Protocol::DoubleNbl, 0.4,
                                              3000.0, 40000.0),
                                   60);
  const auto low_tri = monte_carlo(config_for(Protocol::Triple, 0.4, 3000.0,
                                              40000.0),
                                   60);
  EXPECT_LT(low_tri.waste.mean(), low_nbl.waste.mean());

  const auto hi_nbl = monte_carlo(config_for(Protocol::DoubleNbl, 4.0,
                                             3000.0, 40000.0),
                                  60);
  const auto hi_tri = monte_carlo(config_for(Protocol::Triple, 4.0, 3000.0,
                                             40000.0),
                                  60);
  EXPECT_GT(hi_tri.waste.mean(), hi_nbl.waste.mean());
}

TEST(SimVsModelTest, SuccessProbabilityTracksRiskModel) {
  // Pick a regime with a sizeable but non-saturated fatal probability.
  SimConfig config;
  config.protocol = Protocol::DoubleNbl;
  config.params = base_scenario().params.with_overhead(4.0);  // theta = R = 4
  config.params.nodes = 16;
  config.params.mtbf = 50.0;
  config.period = min_period(config.protocol, config.params) * 2.0;  // 20 s
  config.t_base = 500.0;
  config.stop_on_fatal = true;
  config.max_makespan = 1e6;

  MonteCarloOptions options;
  options.trials = 500;
  options.threads = 2;
  options.seed = 7;
  const auto mc = run_monte_carlo(config, options);

  // The model needs the *expected execution time* T; use the simulated mean
  // makespan of the surviving runs as the best available estimate.
  const double t_expected = mc.makespan.mean();
  const double model_success =
      success_probability(config.protocol, config.params, t_expected);
  const auto ci = mc.success.wilson_interval();
  // The first-order model should sit inside (a slightly widened) MC CI.
  const double slack = 0.05;
  EXPECT_GT(model_success, ci.lo - slack)
      << "sim=" << mc.success.estimate() << " model=" << model_success;
  EXPECT_LT(model_success, ci.hi + slack)
      << "sim=" << mc.success.estimate() << " model=" << model_success;
}

TEST(SimVsModelTest, TripleSurvivesWhereDoubleDies) {
  // Same brutal platform: the triple protocol's success probability must be
  // dramatically higher (Fig. 6b / 9b in simulation).
  SimConfig config;
  config.params = base_scenario().params.with_overhead(4.0);
  config.params.nodes = 18;
  config.params.mtbf = 40.0;
  config.t_base = 500.0;
  config.stop_on_fatal = true;
  config.max_makespan = 1e6;

  MonteCarloOptions options;
  options.trials = 300;
  options.threads = 2;

  config.protocol = Protocol::DoubleNbl;
  config.period = min_period(config.protocol, config.params) * 2.0;
  const auto nbl = run_monte_carlo(config, options);

  config.protocol = Protocol::Triple;
  config.period = min_period(config.protocol, config.params) * 2.0;
  const auto tri = run_monte_carlo(config, options);

  EXPECT_GT(tri.success.estimate(), nbl.success.estimate());
  // Failure odds at least 5x lower for Triple in this regime.
  const double nbl_fail = 1.0 - nbl.success.estimate();
  const double tri_fail = 1.0 - tri.success.estimate();
  ASSERT_GT(nbl_fail, 0.0);
  EXPECT_LT(tri_fail, nbl_fail / 5.0 + 0.02);
}

TEST(SimVsModelTest, WeibullShapeOneMatchesExponentialModel) {
  // PerNodeInjector with shape-1 Weibull inter-arrivals is n independent
  // Poisson processes, i.e. exactly the platform-exponential stream the
  // analytic model assumes. The waste must therefore track the model inside
  // the same tolerance band as the pooled exponential injector: 12% relative
  // (first-order model error) plus 3 standard errors (Monte-Carlo noise).
  const auto config = config_for(Protocol::DoubleNbl, 1.0, 2000.0, 50000.0);
  const double model_waste =
      waste(Protocol::DoubleNbl, config.params, config.period);
  MonteCarloOptions options;
  options.trials = 80;
  options.threads = 2;
  options.seed = 0xabc;
  options.weibull =
      dckpt::util::Weibull::from_mean(1.0, config.params.node_mtbf());
  const auto mc = run_monte_carlo(config, options);
  ASSERT_EQ(mc.diverged, 0u);
  EXPECT_NEAR(mc.waste.mean(), model_waste,
              0.12 * model_waste + 3.0 * mc.waste.standard_error())
      << "model=" << model_waste << " sim=" << mc.waste.mean();
}

TEST(SimVsModelTest, WeibullShapeBelowOneMatchesClusteredModel) {
  // Shape 0.7 clusters failures (decreasing hazard): bursts hit the same
  // period repeatedly, so waste drifts above the exponential closed form.
  // The clustered-failure model (model/nonexponential.hpp) corrects both the
  // failure count and the mid-period loss for the Weibull shape, which
  // tightens the validation band from the old 30% + 4 sigma (against the
  // exponential model) to 15% relative + 3 standard errors.
  const auto config = config_for(Protocol::DoubleNbl, 1.0, 2000.0, 50000.0);
  const double exp_waste =
      waste(Protocol::DoubleNbl, config.params, config.period);
  const double horizon = expected_makespan(Protocol::DoubleNbl, config.params,
                                           config.period, config.t_base);
  const double model_waste =
      waste(Protocol::DoubleNbl, config.params, config.period,
            WeibullFailures{0.7, horizon});
  // The correction must move in the clustering direction (more waste)...
  EXPECT_GT(model_waste, exp_waste);
  // ...and reduce bit-identically to the exponential closed form at k = 1.
  EXPECT_EQ(waste(Protocol::DoubleNbl, config.params, config.period,
                  WeibullFailures{1.0, horizon}),
            exp_waste);
  MonteCarloOptions options;
  options.trials = 80;
  options.threads = 2;
  options.seed = 0xabc;
  options.weibull =
      dckpt::util::Weibull::from_mean(0.7, config.params.node_mtbf());
  const auto mc = run_monte_carlo(config, options);
  ASSERT_EQ(mc.diverged, 0u);
  EXPECT_NEAR(mc.waste.mean(), model_waste,
              0.15 * model_waste + 3.0 * mc.waste.standard_error())
      << "clustered model=" << model_waste << " exponential=" << exp_waste
      << " sim=" << mc.waste.mean();
  // Clustering must show up in the spread: the Weibull stream's waste
  // variance should not collapse below the exponential stream's.
  const auto exp_mc = monte_carlo(config, 80);
  EXPECT_GT(mc.waste.stddev(), 0.5 * exp_mc.waste.stddev());
}

TEST(SimVsModelTest, VerifiedCheckpointWasteTracksSdcModel) {
  // Silent errors + verified checkpoints: the (V, k, P) first-order model of
  // model/sdc.hpp vs exact simulation. The model neglects strike/failure
  // interaction and retention exhaustion, so the band is 15% relative plus
  // 3 Monte-Carlo standard errors (the issue's acceptance band).
  for (const Protocol protocol : {Protocol::DoubleNbl, Protocol::Triple}) {
    auto config = config_for(protocol, 1.0, 3600.0, 50000.0);
    config.sdc_rate = 2e-4;
    config.verify_cost = 10.0;
    config.verify_every = 2;
    config.keep_last = 3;
    const SdcSpec spec{config.sdc_rate, config.verify_cost,
                       config.verify_every};
    const double model_waste =
        waste_with_sdc(protocol, config.params, config.period, spec);
    ASSERT_LT(model_waste, 1.0) << protocol_name(protocol);
    const auto mc = monte_carlo(config, 80, 0x5dc);
    ASSERT_EQ(mc.diverged, 0u);
    EXPECT_NEAR(mc.waste.mean(), model_waste,
                0.15 * model_waste + 3.0 * mc.waste.standard_error())
        << protocol_name(protocol) << " model=" << model_waste
        << " sim=" << mc.waste.mean();
    // The strike campaign must actually have exercised the machinery.
    EXPECT_GT(mc.sdc_injected.mean(), 0.0) << protocol_name(protocol);
    EXPECT_GT(mc.verify_time.mean(), 0.0) << protocol_name(protocol);
  }
}

TEST(SimVsModelTest, FaultPredictionWasteTracksPredictorModel) {
  // Fault prediction + proactive checkpoints: the (p, r, w) first-order
  // model of model/predictor.hpp vs exact simulation. The model neglects
  // alarm/failure interaction and the skip-if-just-committed optimization,
  // so the band is 15% relative plus 3 Monte-Carlo standard errors (the
  // issue's acceptance band). Just-in-time (w = 0) and windowed predictors
  // both validate.
  for (const Protocol protocol : {Protocol::DoubleNbl, Protocol::Triple}) {
    auto config = config_for(protocol, 1.0, 3600.0, 50000.0);
    config.pred_precision = 0.7;
    config.pred_recall = 0.6;
    config.pred_window = 0.0;  // just-in-time limit
    config.proactive_cost = 5.0;
    const PredictorSpec spec{config.pred_precision, config.pred_recall,
                             config.pred_window, config.proactive_cost};
    const double model_waste =
        waste_with_predictor(protocol, config.params, config.period, spec);
    ASSERT_LT(model_waste, 1.0) << protocol_name(protocol);
    const auto mc = monte_carlo(config, 80, 0x9ed);
    ASSERT_EQ(mc.diverged, 0u);
    EXPECT_NEAR(mc.waste.mean(), model_waste,
                0.15 * model_waste + 3.0 * mc.waste.standard_error())
        << protocol_name(protocol) << " model=" << model_waste
        << " sim=" << mc.waste.mean();
    // The predictor must actually have fired: alarms raised, proactive
    // commits taken, and most failures intercepted (recall 0.6).
    EXPECT_GT(mc.alarms_raised.mean(), 0.0) << protocol_name(protocol);
    EXPECT_GT(mc.proactive_ckpts.mean(), 0.0) << protocol_name(protocol);
    EXPECT_GT(mc.true_predictions.mean(), 0.0) << protocol_name(protocol);
  }
}

TEST(SimVsModelTest, WindowedPredictionWasteTracksPredictorModel) {
  // A positive prediction window: leads draw uniform in (0, w), only those
  // past C_p are handled (r_t = r (w - C_p)/w) and the handled failures
  // still lose the post-commit residual. Same 15% + 3 sigma band.
  auto config = config_for(Protocol::DoubleNbl, 1.0, 3600.0, 50000.0);
  config.pred_precision = 0.8;
  config.pred_recall = 0.7;
  config.pred_window = 60.0;
  config.proactive_cost = 10.0;
  const PredictorSpec spec{config.pred_precision, config.pred_recall,
                           config.pred_window, config.proactive_cost};
  const double model_waste = waste_with_predictor(
      Protocol::DoubleNbl, config.params, config.period, spec);
  ASSERT_LT(model_waste, 1.0);
  const auto mc = monte_carlo(config, 80, 0x9ee);
  ASSERT_EQ(mc.diverged, 0u);
  EXPECT_NEAR(mc.waste.mean(), model_waste,
              0.15 * model_waste + 3.0 * mc.waste.standard_error())
      << "model=" << model_waste << " sim=" << mc.waste.mean();
  // With w > C_p some predicted failures still land before the proactive
  // commit finishes: both scoreboard sides must be populated.
  EXPECT_GT(mc.true_predictions.mean(), 0.0);
  EXPECT_GT(mc.missed_failures.mean(), 0.0);
}

TEST(SimVsModelTest, PureVerificationOverheadTracksSdcModel) {
  // No strikes: the only SDC term left is V/(kP), which the simulator pays
  // exactly (one blocking verification every k periods). Tight band: the
  // model error is the same first-order one as the fail-stop test (12%),
  // since the verification factor itself is exact.
  auto config = config_for(Protocol::DoubleNbl, 1.0, 2000.0, 50000.0);
  config.verify_cost = 15.0;
  config.verify_every = 3;
  config.keep_last = 2;
  const SdcSpec spec{0.0, config.verify_cost, config.verify_every};
  const double model_waste =
      waste_with_sdc(Protocol::DoubleNbl, config.params, config.period, spec);
  const auto mc = monte_carlo(config, 80);
  ASSERT_EQ(mc.diverged, 0u);
  EXPECT_NEAR(mc.waste.mean(), model_waste,
              0.12 * model_waste + 3.0 * mc.waste.standard_error())
      << "model=" << model_waste << " sim=" << mc.waste.mean();
  EXPECT_EQ(mc.sdc_injected.mean(), 0.0);
  EXPECT_EQ(mc.sdc_detected.mean(), 0.0);
}

TEST(SimVsModelTest, DifferentialCheckpointWasteTracksDcpModel) {
  // Differential checkpoints: the (d, B, K, h) model of model/dcp.hpp vs
  // the simulator's dcp-scaled geometry. The fault-free part of the
  // composition is exact (part 3 absorbs the shorter exchange, so the
  // period stays P); the failure terms carry the usual first-order error,
  // so the band is 15% relative plus 3 Monte-Carlo standard errors (the
  // issue's acceptance band).
  for (const Protocol protocol : {Protocol::DoubleNbl, Protocol::Triple}) {
    auto config = config_for(protocol, 1.0, 2000.0, 50000.0);
    config.dcp.stack_size = 6;
    config.dcp.dirty_fraction = 0.1;
    config.dcp.hash_overhead = 0.02;
    const double full_waste = waste(protocol, config.params, config.period);
    const double model_waste =
        waste_with_dcp(protocol, config.params, config.period, config.dcp);
    // A mostly-clean workload must beat the full-image waste outright.
    ASSERT_LT(model_waste, full_waste) << protocol_name(protocol);
    const auto mc = monte_carlo(config, 80, 0xdc9);
    ASSERT_EQ(mc.diverged, 0u);
    EXPECT_NEAR(mc.waste.mean(), model_waste,
                0.15 * model_waste + 3.0 * mc.waste.standard_error())
        << protocol_name(protocol) << " model=" << model_waste
        << " sim=" << mc.waste.mean();
    EXPECT_LT(mc.waste.mean(), full_waste) << protocol_name(protocol);
  }
}

TEST(SimVsModelTest, FullyDirtyDcpReducesTowardTheFullImageModel) {
  // d = 1, h = 0: every delta ships the whole image, so the exchange parts
  // keep their full-image length and only the chain replay (g > 1) should
  // separate dcp from the baseline -- the simulated waste must not drop
  // below the full-image model's band.
  auto config = config_for(Protocol::DoubleNbl, 1.0, 2000.0, 50000.0);
  config.dcp.stack_size = 4;
  config.dcp.dirty_fraction = 1.0;
  const double model_waste = waste_with_dcp(
      Protocol::DoubleNbl, config.params, config.period, config.dcp);
  EXPECT_GE(model_waste,
            waste(Protocol::DoubleNbl, config.params, config.period));
  const auto mc = monte_carlo(config, 80, 0xdca);
  ASSERT_EQ(mc.diverged, 0u);
  EXPECT_NEAR(mc.waste.mean(), model_waste,
              0.15 * model_waste + 3.0 * mc.waste.standard_error())
      << "model=" << model_waste << " sim=" << mc.waste.mean();
}

TEST(SimVsModelTest, WeibullFailuresStillComplete) {
  // The analytic model assumes exponential failures; the simulator also runs
  // Weibull (shape < 1, clustered) streams. Sanity: runs complete, waste is
  // higher-variance but in (0, 1).
  auto config = config_for(Protocol::DoubleNbl, 1.0, 2000.0, 30000.0);
  MonteCarloOptions options;
  options.trials = 40;
  options.threads = 2;
  options.weibull =
      dckpt::util::Weibull::from_mean(0.7, config.params.node_mtbf());
  const auto mc = run_monte_carlo(config, options);
  ASSERT_EQ(mc.diverged, 0u);
  EXPECT_GT(mc.waste.mean(), 0.0);
  EXPECT_LT(mc.waste.mean(), 1.0);
}

}  // namespace
