#include "model/waste.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "model/scenario.hpp"

namespace {

using namespace dckpt::model;

Parameters base_params(double phi = 1.0) {
  auto p = base_scenario().params;  // D=0 delta=2 R=4 alpha=10 n=324*32
  p.overhead = phi;
  p.mtbf = 7.0 * 3600.0;
  return p;
}

Parameters exa_params(double phi = 30.0) {
  auto p = exa_scenario().params;  // D=60 delta=30 R=60 alpha=10 n=1e6
  p.overhead = phi;
  p.mtbf = 7.0 * 3600.0;
  return p;
}

// ------------------------------------------------------------ period parts

TEST(PeriodPartsTest, DoubleDecomposition) {
  const auto p = base_params(1.0);  // theta = 4 + 10*3 = 34
  const auto parts = period_parts(Protocol::DoubleNbl, p, 100.0);
  EXPECT_DOUBLE_EQ(parts.part1, 2.0);
  EXPECT_DOUBLE_EQ(parts.part2, 34.0);
  EXPECT_DOUBLE_EQ(parts.part3, 64.0);
}

TEST(PeriodPartsTest, TripleDecomposition) {
  const auto p = base_params(1.0);
  const auto parts = period_parts(Protocol::Triple, p, 100.0);
  EXPECT_DOUBLE_EQ(parts.part1, 34.0);
  EXPECT_DOUBLE_EQ(parts.part2, 34.0);
  EXPECT_DOUBLE_EQ(parts.part3, 32.0);
}

TEST(PeriodPartsTest, RejectsTooShortPeriod) {
  const auto p = base_params(1.0);
  EXPECT_THROW(period_parts(Protocol::DoubleNbl, p, 30.0),
               std::invalid_argument);
  EXPECT_THROW(period_parts(Protocol::Triple, p, 60.0), std::invalid_argument);
}

TEST(WorkPerPeriodTest, MatchesPaperFormulas) {
  const auto p = base_params(1.0);
  // W = P - delta - phi for doubles.
  EXPECT_DOUBLE_EQ(work_per_period(Protocol::DoubleNbl, p, 100.0), 97.0);
  // W = P - 2 phi for triples.
  EXPECT_DOUBLE_EQ(work_per_period(Protocol::Triple, p, 100.0), 98.0);
  // DoubleBlocking: W = P - delta - R.
  EXPECT_DOUBLE_EQ(work_per_period(Protocol::DoubleBlocking, p, 100.0), 94.0);
}

// ----------------------------------------------- closed form F vs RE parts

class FailureCostConsistency
    : public ::testing::TestWithParam<std::tuple<Protocol, double, double>> {};

TEST_P(FailureCostConsistency, ClosedFormMatchesReDecomposition) {
  const auto [protocol, phi_ratio, period_scale] = GetParam();
  for (const auto& scenario : paper_scenarios()) {
    const auto params = scenario.at_phi_ratio(phi_ratio).with_mtbf(7 * 3600.0);
    const double lo = min_period(protocol, params);
    const double period = lo * period_scale;
    const double closed = expected_failure_cost(protocol, params, period);
    const double parts =
        expected_failure_cost_from_parts(protocol, params, period);
    EXPECT_NEAR(closed, parts, 1e-9 * std::max(1.0, closed))
        << protocol_name(protocol) << " " << scenario.name
        << " phi/R=" << phi_ratio << " P=" << period;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsGrid, FailureCostConsistency,
    ::testing::Combine(
        ::testing::Values(Protocol::DoubleBlocking, Protocol::DoubleNbl,
                          Protocol::DoubleBof, Protocol::Triple,
                          Protocol::TripleBof),
        ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 1.0),
        ::testing::Values(1.0, 1.5, 3.0, 10.0)));

// ------------------------------------------------- paper identities on F

TEST(FailureCostTest, NblMatchesEquation7) {
  const auto p = base_params(1.0);  // theta = 34
  const double period = 200.0;
  // F_nbl = D + R + theta + P/2 = 0 + 4 + 34 + 100.
  EXPECT_DOUBLE_EQ(expected_failure_cost(Protocol::DoubleNbl, p, period),
                   138.0);
}

TEST(FailureCostTest, BofMatchesEquation8) {
  const auto p = base_params(1.0);
  const double period = 200.0;
  // F_bof = D + 2R + theta - phi + P/2 = 0 + 8 + 34 - 1 + 100.
  EXPECT_DOUBLE_EQ(expected_failure_cost(Protocol::DoubleBof, p, period),
                   141.0);
}

TEST(FailureCostTest, TripleMatchesEquation14AndEqualsNbl) {
  // The paper observes F_nbl = F_tri for every P where both are defined.
  const auto p = exa_params(30.0);
  for (double period : {2000.0, 5000.0, 20000.0}) {
    EXPECT_DOUBLE_EQ(expected_failure_cost(Protocol::Triple, p, period),
                     expected_failure_cost(Protocol::DoubleNbl, p, period));
  }
}

TEST(FailureCostTest, BofMinusNblIsRMinusPhi) {
  for (const auto& scenario : paper_scenarios()) {
    for (double ratio : {0.0, 0.3, 0.8, 1.0}) {
      const auto p = scenario.at_phi_ratio(ratio).with_mtbf(7 * 3600.0);
      const double period = min_period(Protocol::DoubleNbl, p) * 4.0;
      const double diff =
          expected_failure_cost(Protocol::DoubleBof, p, period) -
          expected_failure_cost(Protocol::DoubleNbl, p, period);
      EXPECT_NEAR(diff, p.remote_blocking - p.overhead, 1e-9)
          << scenario.name << " ratio " << ratio;
    }
  }
}

// -------------------------------------------------------------- waste parts

TEST(WasteFaultFreeTest, MatchesPaperExpressions) {
  const auto p = base_params(1.0);
  // (delta + phi)/P.
  EXPECT_DOUBLE_EQ(waste_fault_free(Protocol::DoubleNbl, p, 100.0), 0.03);
  // 2 phi / P.
  EXPECT_DOUBLE_EQ(waste_fault_free(Protocol::Triple, p, 100.0), 0.02);
  // (delta + R)/P.
  EXPECT_DOUBLE_EQ(waste_fault_free(Protocol::DoubleBlocking, p, 100.0), 0.06);
}

TEST(WasteFaultFreeTest, TripleWithFullOverlapIsFree) {
  const auto p = base_params(0.0);
  const double period = min_period(Protocol::Triple, p) * 2.0;
  EXPECT_DOUBLE_EQ(waste_fault_free(Protocol::Triple, p, period), 0.0);
}

TEST(WasteTest, ProductComposition) {
  const auto p = base_params(2.0);
  const double period = 300.0;
  const double ff = waste_fault_free(Protocol::DoubleNbl, p, period);
  const double fail = waste_failure(Protocol::DoubleNbl, p, period);
  const double total = waste(Protocol::DoubleNbl, p, period);
  EXPECT_NEAR(total, ff + fail - ff * fail, 1e-12);
}

TEST(WasteTest, BoundsRespected) {
  for (const auto& scenario : paper_scenarios()) {
    for (Protocol protocol : kAllProtocols) {
      for (double ratio : {0.0, 0.5, 1.0}) {
        for (double mtbf : {15.0, 600.0, 3600.0, 86400.0}) {
          const auto p = scenario.at_phi_ratio(ratio).with_mtbf(mtbf);
          const double period = min_period(protocol, p) * 2.0;
          const double w = waste(protocol, p, period);
          EXPECT_GE(w, 0.0);
          EXPECT_LE(w, 1.0);
        }
      }
    }
  }
}

TEST(WasteTest, TinyMtbfMeansNoProgress) {
  // The paper: at M = 15 s "no progress happens for any protocol".
  const auto p = base_params(2.0).with_mtbf(15.0);
  for (Protocol protocol : kPaperProtocols) {
    const double period = min_period(protocol, p);
    EXPECT_DOUBLE_EQ(waste(protocol, p, period), 1.0) << protocol_name(protocol);
  }
}

TEST(WasteTest, LargeMtbfWasteIsSmall) {
  // At M = 1 day the waste should be "almost 0" (paper Sec. VI-A) --
  // evaluated at a near-optimal period.
  const auto p = base_params(0.4).with_mtbf(86400.0);
  const double period = std::sqrt(2.0 * (p.local_ckpt + p.overhead) * p.mtbf);
  EXPECT_LT(waste(Protocol::DoubleNbl, p, period), 0.05);
}

TEST(WasteTest, MonotoneInMtbf) {
  const auto base = base_params(1.0);
  const double period = 500.0;
  double previous = 2.0;
  for (double mtbf : {120.0, 600.0, 3600.0, 8.0 * 3600.0, 86400.0}) {
    const double w = waste(Protocol::DoubleNbl, base.with_mtbf(mtbf), period);
    EXPECT_LT(w, previous) << "M=" << mtbf;
    previous = w;
  }
}

TEST(ExpectedMakespanTest, InflatesBaseTime) {
  const auto p = base_params(1.0);
  const double period = 300.0;
  const double t = expected_makespan(Protocol::DoubleNbl, p, period, 1e6);
  const double w = waste(Protocol::DoubleNbl, p, period);
  EXPECT_NEAR(t * (1.0 - w), 1e6, 1e-3);
  EXPECT_GT(t, 1e6);
}

TEST(ExpectedMakespanTest, InfiniteWhenNoProgress) {
  const auto p = base_params(2.0).with_mtbf(10.0);
  const double period = min_period(Protocol::DoubleNbl, p);
  EXPECT_TRUE(std::isinf(
      expected_makespan(Protocol::DoubleNbl, p, period, 1000.0)));
}

TEST(ExpectedMakespanTest, RejectsNegativeWork) {
  const auto p = base_params(1.0);
  EXPECT_THROW(expected_makespan(Protocol::DoubleNbl, p, 300.0, -1.0),
               std::invalid_argument);
}

// Re-execution expectations from the paper's Sec. III-A, literally.
TEST(ReExecutionTest, NblTermsMatchPaper) {
  const auto p = base_params(1.0);  // delta=2 theta=34
  const double period = 100.0;      // sigma = 64
  const auto re = expected_reexecution(Protocol::DoubleNbl, p, period);
  EXPECT_DOUBLE_EQ(re.re1, 34.0 + 64.0 + 1.0);         // theta+sigma+delta/2
  EXPECT_DOUBLE_EQ(re.re2, 34.0 + 64.0 + 2.0 + 17.0);  // +delta+theta/2
  EXPECT_DOUBLE_EQ(re.re3, 34.0 + 32.0);               // theta+sigma/2
}

TEST(ReExecutionTest, TripleTermsMatchPaper) {
  const auto p = base_params(1.0);  // theta=34
  const double period = 100.0;      // sigma = 32
  const auto re = expected_reexecution(Protocol::Triple, p, period);
  EXPECT_DOUBLE_EQ(re.re1, 68.0 + 32.0 + 17.0);  // 2theta+sigma+theta/2
  EXPECT_DOUBLE_EQ(re.re2, 51.0);                // 3theta/2
  EXPECT_DOUBLE_EQ(re.re3, 68.0 + 16.0);         // 2theta+sigma/2
}

}  // namespace
