#include "runtime/grid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "chaos/chaos_api.hpp"

namespace {

using namespace dckpt::runtime;
using dckpt::chaos::ShadowConfig;
using dckpt::ckpt::Topology;

GridConfig small_grid(Topology topology = Topology::Pairs) {
  GridConfig config;
  config.grid_rows = 2;
  config.grid_cols = topology == Topology::Pairs ? 2 : 3;
  config.topology = topology;
  config.block_rows = 8;
  config.block_cols = 8;
  config.checkpoint_interval = 6;
  config.total_steps = 30;
  config.threads = 2;
  return config;
}

std::uint64_t reference_hash(const GridConfig& config) {
  GridCoordinator reference(config, std::make_unique<HeatKernel2D>());
  const auto report = reference.run();
  EXPECT_FALSE(report.fatal);
  return report.final_hash;
}

TEST(HeatKernel2DTest, RejectsUnstableCoefficient) {
  EXPECT_THROW(HeatKernel2D(0.0), std::invalid_argument);
  EXPECT_THROW(HeatKernel2D(0.3), std::invalid_argument);
}

TEST(HeatKernel2DTest, UniformFieldIsSteadyState) {
  HeatKernel2D kernel(0.2);
  std::vector<double> prev(16, 2.0), next(16);
  const std::vector<double> edge(4, 2.0);
  kernel.step(prev, next, 4, 4, edge, edge, edge, edge);
  for (double v : next) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(HeatKernel2DTest, PointSourceSpreadsSymmetrically) {
  HeatKernel2D kernel(0.25);
  std::vector<double> prev(25, 0.0), next(25);
  prev[12] = 1.0;  // centre of a 5x5 block
  const std::vector<double> zero(5, 0.0);
  kernel.step(prev, next, 5, 5, zero, zero, zero, zero);
  EXPECT_DOUBLE_EQ(next[12], 0.0);  // c = 0.25 drains the peak entirely
  EXPECT_DOUBLE_EQ(next[7], 0.25);  // north neighbour
  EXPECT_DOUBLE_EQ(next[17], 0.25);
  EXPECT_DOUBLE_EQ(next[11], 0.25);
  EXPECT_DOUBLE_EQ(next[13], 0.25);
  // Mass conserved away from boundaries.
  EXPECT_NEAR(std::accumulate(next.begin(), next.end(), 0.0), 1.0, 1e-12);
}

TEST(HeatKernel2DTest, HaloCouplesNeighbourBlocks) {
  HeatKernel2D kernel(0.2);
  std::vector<double> prev(16, 0.0), hot(16), cold(16);
  std::vector<double> hot_north(4, 5.0), zero(4, 0.0);
  kernel.step(prev, hot, 4, 4, hot_north, zero, zero, zero);
  kernel.step(prev, cold, 4, 4, zero, zero, zero, zero);
  for (int c = 0; c < 4; ++c) EXPECT_GT(hot[c], cold[c]);
  for (int c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(hot[4 + c], cold[4 + c]);
}

TEST(GridConfigTest, Validation) {
  auto config = small_grid();
  config.grid_rows = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_grid(Topology::Triples);
  config.grid_cols = 2;  // 4 workers, not divisible by 3
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_grid();
  config.block_cols = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(GridCoordinatorTest, FaultFreeDeterministic) {
  const auto config = small_grid();
  EXPECT_EQ(reference_hash(config), reference_hash(config));
}

TEST(GridCoordinatorTest, ResultIndependentOfThreadCount) {
  auto config = small_grid();
  config.threads = 1;
  const auto h1 = reference_hash(config);
  config.threads = 4;
  EXPECT_EQ(reference_hash(config), h1);
}

TEST(GridCoordinatorTest, EnergyDiffusesGlobally) {
  const auto config = small_grid();
  GridCoordinator coordinator(config, std::make_unique<HeatKernel2D>());
  const auto initial = coordinator.global_state();
  coordinator.run();
  const auto final_state = coordinator.global_state();
  auto energy = [](const std::vector<double>& u) {
    double e = 0.0;
    for (double v : u) e += v * v;
    return e;
  };
  EXPECT_LT(energy(final_state), energy(initial));
}

TEST(GridCoordinatorTest, SingleFailureMaskedPairs) {
  const auto config = small_grid();
  const auto expected = reference_hash(config);
  GridCoordinator coordinator(config, std::make_unique<HeatKernel2D>());
  const FailureInjection failures[] = {{15, 2}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.failures, 1u);
  EXPECT_EQ(report.replayed_steps, 3u);  // 15 -> checkpoint at 12
  EXPECT_EQ(report.final_hash, expected);
}

TEST(GridCoordinatorTest, TriplesSurviveSequentialPair) {
  const auto config = small_grid(Topology::Triples);
  const auto expected = reference_hash(config);
  GridCoordinator coordinator(config, std::make_unique<HeatKernel2D>());
  const FailureInjection failures[] = {{10, 0}, {11, 1}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.final_hash, expected);
}

TEST(GridCoordinatorTest, PairWipeoutIsFatal) {
  const auto config = small_grid();
  GridCoordinator coordinator(config, std::make_unique<HeatKernel2D>());
  const FailureInjection failures[] = {{10, 0}, {10, 1}};
  const auto report = coordinator.run(failures);
  EXPECT_TRUE(report.fatal);
}

TEST(GridCoordinatorTest, FailureBeforeFirstCheckpoint) {
  const auto config = small_grid();
  const auto expected = reference_hash(config);
  GridCoordinator coordinator(config, std::make_unique<HeatKernel2D>());
  const FailureInjection failures[] = {{3, 1}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal);
  EXPECT_EQ(report.replayed_steps, 3u);
  EXPECT_EQ(report.final_hash, expected);
}

TEST(GridCoordinatorTest, GlobalStateHasExpectedSize) {
  const auto config = small_grid();
  GridCoordinator coordinator(config, std::make_unique<HeatKernel2D>());
  EXPECT_EQ(coordinator.global_state().size(),
            config.nodes() * config.block_rows * config.block_cols);
}

TEST(GridCoordinatorTest, NullKernelRejected) {
  EXPECT_THROW(GridCoordinator(small_grid(), nullptr),
               std::invalid_argument);
}

TEST(GridCoordinatorTest, InjectionValidationMatchesChainRuntime) {
  // Satellite parity bugfix: the grid must reject out-of-range injections
  // exactly like the 1-D Coordinator instead of silently ignoring them.
  const auto config = small_grid();
  RuntimeConfig chain;
  chain.nodes = config.nodes();
  chain.total_steps = config.total_steps;
  chain.checkpoint_interval = config.checkpoint_interval;

  const FailureInjection bad_node[] = {{10, config.nodes()}};
  const FailureInjection bad_step[] = {{config.total_steps, 0}};
  const FailureInjection late_node[] = {{config.total_steps, 99}};
  for (std::span<const FailureInjection> bad :
       {std::span<const FailureInjection>(bad_node),
        std::span<const FailureInjection>(bad_step),
        std::span<const FailureInjection>(late_node)}) {
    GridCoordinator grid(config, std::make_unique<HeatKernel2D>());
    Coordinator coordinator(chain, std::make_unique<HeatKernel>());
    EXPECT_THROW(grid.run(bad), std::invalid_argument);
    EXPECT_THROW(coordinator.run(bad), std::invalid_argument);
  }
}

TEST(GridCoordinatorTest, RereplicationDelayWidensRiskWindow) {
  // Satellite bugfix: GridConfig::rereplication_delay_steps must be
  // honored. The same buddy double hit is masked when the refill lands
  // before the second failure and fatal while the window is still open.
  auto config = small_grid();
  const FailureInjection double_hit[] = {{13, 2}, {15, 3}};  // rack (2,3)
  config.rereplication_delay_steps = 1;  // refill after step 13 replays
  {
    const auto expected = reference_hash(config);
    GridCoordinator coordinator(config, std::make_unique<HeatKernel2D>());
    const auto report = coordinator.run(double_hit);
    ASSERT_FALSE(report.fatal) << report.fatal_reason;
    EXPECT_EQ(report.final_hash, expected);
    // Each failure opens its own one-step window and refill.
    EXPECT_EQ(report.risk_steps, 2u);
    EXPECT_EQ(report.rereplications, 2u);
  }
  config.rereplication_delay_steps = 6;  // still pending at step 15
  {
    GridCoordinator coordinator(config, std::make_unique<HeatKernel2D>());
    const auto report = coordinator.run(double_hit);
    EXPECT_TRUE(report.fatal);
    EXPECT_NE(report.fatal_reason.find("no surviving replica"),
              std::string::npos);
  }
}

TEST(GridCoordinatorTest, CommitClosesRiskWindowAndOracleAgrees) {
  // A committed checkpoint re-creates every replica, so a refill pending
  // across a commit is subsumed -- and the shadow oracle predicts the
  // grid's accounting counter for counter.
  auto config = small_grid();
  config.rereplication_delay_steps = 10;  // longer than interval - replay
  const FailureInjection failures[] = {{13, 2}, {20, 3}};
  GridCoordinator coordinator(config, std::make_unique<HeatKernel2D>());
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  // Window opens after the rollback to 12, ticks through steps 13..18,
  // closes at the commit at 18 -- so the buddy hit at 20 is masked again
  // and the refill clock never fires.
  EXPECT_EQ(report.rereplications, 0u);
  const auto predicted =
      dckpt::chaos::predict_outcome(ShadowConfig(config), failures);
  EXPECT_FALSE(predicted.fatal);
  EXPECT_EQ(report.risk_steps, predicted.risk_steps);
  EXPECT_EQ(report.steps_executed, predicted.steps_executed);
  EXPECT_EQ(report.replayed_steps, predicted.replayed_steps);
  EXPECT_EQ(report.checkpoints, predicted.checkpoints);
  EXPECT_EQ(report.rollbacks, predicted.rollbacks);
  EXPECT_EQ(report.recoveries, predicted.recoveries);
  EXPECT_EQ(report.rereplications, predicted.rereplications);
}

TEST(GridCoordinatorTest, AlarmProactiveCheckpointMasksLoss) {
  // A predicted failure triggers a proactive commit one step ahead, so the
  // kill replays a single step instead of the whole interval -- and the
  // shadow oracle mirrors the alarm accounting exactly.
  const auto config = small_grid();
  const auto expected = reference_hash(config);
  GridCoordinator coordinator(config, std::make_unique<HeatKernel2D>());
  const FailureInjection failures[] = {
      {14, 3, InjectionKind::Alarm, 0, 1}, {15, 3}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.alarms_raised, 1u);
  EXPECT_EQ(report.proactive_ckpts, 1u);
  EXPECT_EQ(report.true_predictions, 1u);
  EXPECT_EQ(report.missed_failures, 0u);
  EXPECT_EQ(report.replayed_steps, 1u);  // 15 -> proactive commit at 14
  EXPECT_EQ(report.final_hash, expected);
  const auto predicted =
      dckpt::chaos::predict_outcome(ShadowConfig(config), failures);
  EXPECT_EQ(report.alarms_raised, predicted.alarms_raised);
  EXPECT_EQ(report.proactive_ckpts, predicted.proactive_ckpts);
  EXPECT_EQ(report.true_predictions, predicted.true_predictions);
  EXPECT_EQ(report.missed_failures, predicted.missed_failures);
  EXPECT_EQ(report.checkpoints, predicted.checkpoints);
  EXPECT_EQ(report.replayed_steps, predicted.replayed_steps);
  EXPECT_EQ(report.rollbacks, predicted.rollbacks);
}

TEST(GridChaosSmoke, ScriptedGridCampaignNeverViolates) {
  // Fast-lane smoke for the generalized chaos engine: every scripted grid
  // danger family plus a few random draws, zero violations.
  dckpt::chaos::ChaosCampaignConfig campaign;
  campaign.grid = small_grid();
  campaign.random_runs = 10;
  campaign.threads = 2;
  const auto summary = dckpt::chaos::run_campaign(campaign);
  EXPECT_EQ(summary.violated, 0u);
  EXPECT_EQ(summary.target, "grid");
  for (const auto& run : summary.runs) {
    EXPECT_NE(run.outcome, dckpt::chaos::ChaosOutcome::Violated)
        << run.schedule.name << ": " << run.detail << "\n  " << run.repro;
    EXPECT_NE(run.repro.find("--grid=2x2"), std::string::npos) << run.repro;
  }
}

}  // namespace
