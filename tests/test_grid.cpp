#include "runtime/grid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

namespace {

using namespace dckpt::runtime;
using dckpt::ckpt::Topology;

GridConfig small_grid(Topology topology = Topology::Pairs) {
  GridConfig config;
  config.grid_rows = 2;
  config.grid_cols = topology == Topology::Pairs ? 2 : 3;
  config.topology = topology;
  config.block_rows = 8;
  config.block_cols = 8;
  config.checkpoint_interval = 6;
  config.total_steps = 30;
  config.threads = 2;
  return config;
}

std::uint64_t reference_hash(const GridConfig& config) {
  GridCoordinator reference(config, std::make_unique<HeatKernel2D>());
  const auto report = reference.run();
  EXPECT_FALSE(report.fatal);
  return report.final_hash;
}

TEST(HeatKernel2DTest, RejectsUnstableCoefficient) {
  EXPECT_THROW(HeatKernel2D(0.0), std::invalid_argument);
  EXPECT_THROW(HeatKernel2D(0.3), std::invalid_argument);
}

TEST(HeatKernel2DTest, UniformFieldIsSteadyState) {
  HeatKernel2D kernel(0.2);
  std::vector<double> prev(16, 2.0), next(16);
  const std::vector<double> edge(4, 2.0);
  kernel.step(prev, next, 4, 4, edge, edge, edge, edge);
  for (double v : next) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(HeatKernel2DTest, PointSourceSpreadsSymmetrically) {
  HeatKernel2D kernel(0.25);
  std::vector<double> prev(25, 0.0), next(25);
  prev[12] = 1.0;  // centre of a 5x5 block
  const std::vector<double> zero(5, 0.0);
  kernel.step(prev, next, 5, 5, zero, zero, zero, zero);
  EXPECT_DOUBLE_EQ(next[12], 0.0);  // c = 0.25 drains the peak entirely
  EXPECT_DOUBLE_EQ(next[7], 0.25);  // north neighbour
  EXPECT_DOUBLE_EQ(next[17], 0.25);
  EXPECT_DOUBLE_EQ(next[11], 0.25);
  EXPECT_DOUBLE_EQ(next[13], 0.25);
  // Mass conserved away from boundaries.
  EXPECT_NEAR(std::accumulate(next.begin(), next.end(), 0.0), 1.0, 1e-12);
}

TEST(HeatKernel2DTest, HaloCouplesNeighbourBlocks) {
  HeatKernel2D kernel(0.2);
  std::vector<double> prev(16, 0.0), hot(16), cold(16);
  std::vector<double> hot_north(4, 5.0), zero(4, 0.0);
  kernel.step(prev, hot, 4, 4, hot_north, zero, zero, zero);
  kernel.step(prev, cold, 4, 4, zero, zero, zero, zero);
  for (int c = 0; c < 4; ++c) EXPECT_GT(hot[c], cold[c]);
  for (int c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(hot[4 + c], cold[4 + c]);
}

TEST(GridConfigTest, Validation) {
  auto config = small_grid();
  config.grid_rows = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_grid(Topology::Triples);
  config.grid_cols = 2;  // 4 workers, not divisible by 3
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = small_grid();
  config.block_cols = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(GridCoordinatorTest, FaultFreeDeterministic) {
  const auto config = small_grid();
  EXPECT_EQ(reference_hash(config), reference_hash(config));
}

TEST(GridCoordinatorTest, ResultIndependentOfThreadCount) {
  auto config = small_grid();
  config.threads = 1;
  const auto h1 = reference_hash(config);
  config.threads = 4;
  EXPECT_EQ(reference_hash(config), h1);
}

TEST(GridCoordinatorTest, EnergyDiffusesGlobally) {
  const auto config = small_grid();
  GridCoordinator coordinator(config, std::make_unique<HeatKernel2D>());
  const auto initial = coordinator.global_state();
  coordinator.run();
  const auto final_state = coordinator.global_state();
  auto energy = [](const std::vector<double>& u) {
    double e = 0.0;
    for (double v : u) e += v * v;
    return e;
  };
  EXPECT_LT(energy(final_state), energy(initial));
}

TEST(GridCoordinatorTest, SingleFailureMaskedPairs) {
  const auto config = small_grid();
  const auto expected = reference_hash(config);
  GridCoordinator coordinator(config, std::make_unique<HeatKernel2D>());
  const FailureInjection failures[] = {{15, 2}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.failures, 1u);
  EXPECT_EQ(report.replayed_steps, 3u);  // 15 -> checkpoint at 12
  EXPECT_EQ(report.final_hash, expected);
}

TEST(GridCoordinatorTest, TriplesSurviveSequentialPair) {
  const auto config = small_grid(Topology::Triples);
  const auto expected = reference_hash(config);
  GridCoordinator coordinator(config, std::make_unique<HeatKernel2D>());
  const FailureInjection failures[] = {{10, 0}, {11, 1}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal) << report.fatal_reason;
  EXPECT_EQ(report.final_hash, expected);
}

TEST(GridCoordinatorTest, PairWipeoutIsFatal) {
  const auto config = small_grid();
  GridCoordinator coordinator(config, std::make_unique<HeatKernel2D>());
  const FailureInjection failures[] = {{10, 0}, {10, 1}};
  const auto report = coordinator.run(failures);
  EXPECT_TRUE(report.fatal);
}

TEST(GridCoordinatorTest, FailureBeforeFirstCheckpoint) {
  const auto config = small_grid();
  const auto expected = reference_hash(config);
  GridCoordinator coordinator(config, std::make_unique<HeatKernel2D>());
  const FailureInjection failures[] = {{3, 1}};
  const auto report = coordinator.run(failures);
  ASSERT_FALSE(report.fatal);
  EXPECT_EQ(report.replayed_steps, 3u);
  EXPECT_EQ(report.final_hash, expected);
}

TEST(GridCoordinatorTest, GlobalStateHasExpectedSize) {
  const auto config = small_grid();
  GridCoordinator coordinator(config, std::make_unique<HeatKernel2D>());
  EXPECT_EQ(coordinator.global_state().size(),
            config.nodes() * config.block_rows * config.block_cols);
}

TEST(GridCoordinatorTest, NullKernelRejected) {
  EXPECT_THROW(GridCoordinator(small_grid(), nullptr),
               std::invalid_argument);
}

}  // namespace
