#include "model/restart.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/risk.hpp"
#include "model/scenario.hpp"

namespace {

using namespace dckpt::model;

Parameters params_with(double mtbf) {
  return base_scenario().at_phi_ratio(0.25).with_mtbf(mtbf);
}

TEST(ExpectedTimeWithRestartsTest, NoHazardIsIdentity) {
  EXPECT_DOUBLE_EQ(expected_time_with_restarts(1000.0, 0.0), 1000.0);
  EXPECT_DOUBLE_EQ(expected_time_with_restarts(0.0, 1.0), 0.0);
}

TEST(ExpectedTimeWithRestartsTest, MatchesClosedForm) {
  const double t = 5000.0, rho = 1e-4;
  EXPECT_NEAR(expected_time_with_restarts(t, rho),
              (std::exp(rho * t) - 1.0) / rho, 1e-6);
}

TEST(ExpectedTimeWithRestartsTest, TinyHazardIsNearlyLinear) {
  // E[T] ~ T (1 + rho T / 2) for rho T << 1.
  const double t = 1000.0, rho = 1e-9;
  EXPECT_NEAR(expected_time_with_restarts(t, rho),
              t * (1.0 + rho * t / 2.0), 1e-6);
}

TEST(ExpectedTimeWithRestartsTest, OverflowSaturatesToInfinity) {
  EXPECT_TRUE(std::isinf(expected_time_with_restarts(1e6, 1.0)));
}

TEST(ExpectedTimeWithRestartsTest, RejectsNegativeInputs) {
  EXPECT_THROW(expected_time_with_restarts(-1.0, 0.1), std::invalid_argument);
  EXPECT_THROW(expected_time_with_restarts(1.0, -0.1), std::invalid_argument);
}

TEST(EvaluateWithRestartsTest, BenignPlatformMatchesPlainMakespan) {
  // Large MTBF: fatal rate is negligible, expected total ~ makespan.
  const auto params = params_with(7 * 3600.0);
  const auto eval = evaluate_with_restarts(Protocol::Triple, params, 1e5);
  EXPECT_TRUE(eval.feasible);
  EXPECT_NEAR(eval.expected_total, eval.makespan,
              1e-3 * eval.makespan);
  EXPECT_NEAR(eval.attempts, 1.0, 1e-3);
  EXPECT_GT(eval.effective_waste, 0.0);
  EXPECT_LT(eval.effective_waste, 0.2);
}

TEST(EvaluateWithRestartsTest, FatalRateMatchesRiskModule) {
  const auto params = params_with(600.0);
  const auto eval = evaluate_with_restarts(Protocol::DoubleNbl, params, 1e4);
  EXPECT_DOUBLE_EQ(eval.fatal_rate,
                   fatal_failure_rate(Protocol::DoubleNbl, params));
}

TEST(EvaluateWithRestartsTest, RestartsInflateLongRuns) {
  // Hostile platform + long job: restarts dominate.
  const auto params = params_with(60.0);
  const auto eval =
      evaluate_with_restarts(Protocol::DoubleNbl, params, 3.0e5);
  EXPECT_GT(eval.attempts, 1.5);
  EXPECT_GT(eval.expected_total, eval.makespan * 1.2);
  EXPECT_GT(eval.effective_waste,
            1.0 - 3.0e5 / eval.makespan);  // worse than waste alone
}

TEST(EvaluateWithRestartsTest, InfeasiblePlatformFlagged) {
  const auto params = params_with(10.0);
  const auto eval = evaluate_with_restarts(Protocol::DoubleNbl, params, 1e4);
  EXPECT_FALSE(eval.feasible);
  EXPECT_DOUBLE_EQ(eval.effective_waste, 1.0);
  EXPECT_TRUE(std::isinf(eval.expected_total));
}

TEST(EvaluateWithRestartsTest, RejectsNonPositiveWork) {
  EXPECT_THROW(
      evaluate_with_restarts(Protocol::Triple, params_with(3600.0), 0.0),
      std::invalid_argument);
}

TEST(BestProtocolByEffectiveWasteTest, TripleWinsBothAxesAtLowPhi) {
  // Low overhead, moderately failure-prone platform, long job: Triple has
  // both lower waste (Fig. 5 regime) and a far lower fatal rate, so it must
  // win the combined metric.
  const auto params = base_scenario().at_phi_ratio(0.1).with_mtbf(600.0);
  const auto best = best_protocol_by_effective_waste(
      {Protocol::DoubleNbl, Protocol::DoubleBof, Protocol::Triple}, params,
      1e5);
  EXPECT_EQ(best, Protocol::Triple);
}

TEST(BestProtocolByEffectiveWasteTest, CombinedMetricCanFlipTheRanking) {
  // At phi/R = 1 Triple loses on waste alone (Fig. 5), but for a long job
  // on a failure-heavy platform its lower fatal rate can still make it the
  // better end-to-end choice.
  const auto params = base_scenario().at_phi_ratio(1.0).with_mtbf(60.0);
  const double t_base = 4.0e6;
  const auto nbl =
      evaluate_with_restarts(Protocol::DoubleNbl, params, t_base);
  const auto tri = evaluate_with_restarts(Protocol::Triple, params, t_base);
  ASSERT_TRUE(nbl.feasible);
  ASSERT_TRUE(tri.feasible);
  // Plain waste: NBL wins at phi = R.
  EXPECT_LT(nbl.makespan, tri.makespan);
  // Effective (with restarts): Triple wins.
  EXPECT_LT(tri.effective_waste, nbl.effective_waste);
}

TEST(BestProtocolByEffectiveWasteTest, RejectsEmptySet) {
  EXPECT_THROW(
      best_protocol_by_effective_waste({}, params_with(3600.0), 1.0),
      std::invalid_argument);
}

}  // namespace
