#include "model/spares.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/period.hpp"
#include "model/scenario.hpp"

namespace {

using namespace dckpt::model;

TEST(ErlangCTest, SingleServerIsMM1) {
  // M/M/1: probability of waiting = rho.
  for (double rho : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(erlang_c(1, rho), rho, 1e-12);
  }
}

TEST(ErlangCTest, TwoServersClosedForm) {
  // M/M/2: C = 2 rho^2 / (1 + rho), with rho = a/2.
  const double a = 1.0;  // offered load
  const double rho = a / 2.0;
  const double expected = 2.0 * rho * rho / (1.0 + rho);
  EXPECT_NEAR(erlang_c(2, a), expected, 1e-12);
}

TEST(ErlangCTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(erlang_c(4, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(erlang_c(4, 4.0), 1.0);   // saturated
  EXPECT_DOUBLE_EQ(erlang_c(4, 10.0), 1.0);  // overloaded
  EXPECT_THROW(erlang_c(0, 1.0), std::invalid_argument);
  EXPECT_THROW(erlang_c(2, -1.0), std::invalid_argument);
}

TEST(ErlangCTest, MoreServersWaitLess) {
  double previous = 2.0;
  for (std::uint64_t c = 2; c <= 16; c *= 2) {
    const double value = erlang_c(c, 1.5);
    EXPECT_LT(value, previous);
    previous = value;
  }
}

TEST(ExpectedWaitTest, MM1ClosedForm) {
  // M/M/1 wait: W = rho / (mu - lambda).
  SparePoolSpec spec;
  spec.spares = 1;
  spec.repair_time = 100.0;  // mu = 0.01
  const double platform_mtbf = 200.0;  // lambda = 0.005, rho = 0.5
  const double expected = 0.5 / (0.01 - 0.005);
  EXPECT_NEAR(expected_replacement_wait(spec, platform_mtbf), expected, 1e-9);
}

TEST(ExpectedWaitTest, UnstablePoolRejected) {
  SparePoolSpec spec;
  spec.spares = 1;
  spec.repair_time = 1000.0;
  EXPECT_THROW(expected_replacement_wait(spec, 500.0), std::invalid_argument);
}

TEST(ExpectedWaitTest, GenerousPoolWaitsNearZero) {
  SparePoolSpec spec;
  spec.spares = 64;
  spec.repair_time = 600.0;
  EXPECT_LT(expected_replacement_wait(spec, 600.0), 1e-6);
}

TEST(EffectiveDowntimeTest, AddsDetection) {
  SparePoolSpec spec;
  spec.spares = 64;
  spec.repair_time = 600.0;
  spec.detection = 42.0;
  EXPECT_NEAR(effective_downtime(spec, 600.0), 42.0, 1e-3);
}

TEST(WithSparePoolTest, InjectsDowntimeIntoParameters) {
  SparePoolSpec spec;
  spec.spares = 2;
  spec.repair_time = 300.0;
  spec.detection = 10.0;
  const auto base = base_scenario().at_phi_ratio(0.25).with_mtbf(600.0);
  const auto params = with_spare_pool(base, spec);
  EXPECT_GT(params.downtime, 10.0);  // detection + nonzero wait
  EXPECT_LT(params.downtime, 10.0 + 300.0);
  // Other fields untouched.
  EXPECT_DOUBLE_EQ(params.mtbf, base.mtbf);
  EXPECT_DOUBLE_EQ(params.overhead, base.overhead);
}

TEST(SizeSparePoolTest, FindsMinimalPool) {
  SparePoolSpec spec;
  spec.repair_time = 900.0;
  const double platform_mtbf = 300.0;  // offered load = 3
  const auto count = size_spare_pool(spec, platform_mtbf, 5.0);
  ASSERT_GE(count, 4u);  // stability alone needs > 3
  // Minimality: one fewer spare misses the target (or is unstable).
  SparePoolSpec smaller = spec;
  smaller.spares = count - 1;
  if (static_cast<double>(smaller.spares) > 3.0) {
    EXPECT_GT(expected_replacement_wait(smaller, platform_mtbf), 5.0);
  }
  SparePoolSpec exact = spec;
  exact.spares = count;
  EXPECT_LE(expected_replacement_wait(exact, platform_mtbf), 5.0);
}

TEST(SizeSparePoolTest, RejectsBadTarget) {
  SparePoolSpec spec;
  EXPECT_THROW(size_spare_pool(spec, 600.0, 0.0), std::invalid_argument);
}

TEST(SparePoolSpecTest, Validation) {
  SparePoolSpec spec;
  spec.spares = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = SparePoolSpec{};
  spec.repair_time = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = SparePoolSpec{};
  spec.detection = -1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(SparePoolIntegrationTest, SmallerPoolMeansMoreWaste) {
  // Downstream effect: meaner spare pools inflate D, hence the waste.
  // Base scenario, M = 10 min, repairs take 30 min (offered load 3).
  const auto base = base_scenario().at_phi_ratio(0.25).with_mtbf(600.0);
  SparePoolSpec rich;
  rich.spares = 32;
  rich.repair_time = 1800.0;
  SparePoolSpec poor;
  poor.spares = 5;
  poor.repair_time = 1800.0;
  const double rich_waste = waste_at_optimal_period(
      Protocol::DoubleNbl, with_spare_pool(base, rich));
  const double poor_waste = waste_at_optimal_period(
      Protocol::DoubleNbl, with_spare_pool(base, poor));
  EXPECT_GT(poor_waste, rich_waste);
}

}  // namespace
