#include "net/flow_sim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace dckpt::net;

FlowSimulator make_sim() { return FlowSimulator(FlatNetwork(4, 100.0)); }

TEST(FlowSimulatorTest, SingleFlowDuration) {
  auto sim = make_sim();
  sim.submit({{0, 1, kUncapped}, 1000.0, 0.0, 1});
  const auto done = sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0].finish, 10.0);
  EXPECT_DOUBLE_EQ(done[0].mean_rate(), 100.0);
}

TEST(FlowSimulatorTest, PacedFlowRespectsCap) {
  auto sim = make_sim();
  sim.submit({{0, 1, 10.0}, 1000.0, 0.0, 7});
  const auto done = sim.run();
  EXPECT_DOUBLE_EQ(done[0].finish, 100.0);
}

TEST(FlowSimulatorTest, TwoContendingFlowsShareThenSpeedUp) {
  // Equal flows share 50/50; when the short one finishes, the long one
  // speeds to 100. 500B and 1500B: first done at t=10; second has 1000B
  // left, done at t=20.
  auto sim = make_sim();
  sim.submit({{0, 1, kUncapped}, 500.0, 0.0, 1});
  sim.submit({{0, 2, kUncapped}, 1500.0, 0.0, 2});
  const auto done = sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].tag, 1u);
  EXPECT_DOUBLE_EQ(done[0].finish, 10.0);
  EXPECT_EQ(done[1].tag, 2u);
  EXPECT_DOUBLE_EQ(done[1].finish, 20.0);
}

TEST(FlowSimulatorTest, LateArrivalChangesRates) {
  // Flow A (2000B) alone until t=10 (1000B done), then shares with B
  // (500B): both at 50. B finishes at t=20; A's remaining 500B at full
  // rate: t=25.
  auto sim = make_sim();
  sim.submit({{0, 1, kUncapped}, 2000.0, 0.0, 1});
  sim.submit({{0, 2, kUncapped}, 500.0, 10.0, 2});
  const auto done = sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].tag, 2u);
  EXPECT_DOUBLE_EQ(done[0].finish, 20.0);
  EXPECT_DOUBLE_EQ(done[1].finish, 25.0);
}

TEST(FlowSimulatorTest, IdleGapBeforeArrival) {
  auto sim = make_sim();
  sim.submit({{0, 1, kUncapped}, 100.0, 50.0, 3});
  const auto done = sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0].start, 50.0);
  EXPECT_DOUBLE_EQ(done[0].finish, 51.0);
}

TEST(FlowSimulatorTest, ManyParallelDisjointFlows) {
  auto sim = FlowSimulator(FlatNetwork(8, 100.0));
  for (std::uint64_t i = 0; i < 4; ++i) {
    sim.submit({{i, i + 4, kUncapped}, 1000.0, 0.0, i});
  }
  const auto done = sim.run();
  ASSERT_EQ(done.size(), 4u);
  for (const auto& completion : done) {
    EXPECT_DOUBLE_EQ(completion.finish, 10.0);
  }
}

TEST(FlowSimulatorTest, ReusableAfterRun) {
  auto sim = make_sim();
  sim.submit({{0, 1, kUncapped}, 100.0, 0.0, 1});
  EXPECT_EQ(sim.run().size(), 1u);
  sim.submit({{0, 1, kUncapped}, 200.0, 0.0, 2});
  const auto done = sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].tag, 2u);
  EXPECT_DOUBLE_EQ(done[0].finish, 2.0);
}

TEST(FlowSimulatorTest, Validation) {
  auto sim = make_sim();
  EXPECT_THROW(sim.submit({{0, 1, kUncapped}, 0.0, 0.0, 1}),
               std::invalid_argument);
  EXPECT_THROW(sim.submit({{0, 1, kUncapped}, 10.0, -1.0, 1}),
               std::invalid_argument);
}

TEST(FlowSimulatorTest, BuddyExchangePattern) {
  // The double-checkpointing exchange: pairs swap images simultaneously.
  // Egress and ingress are separate ports, so both directions run at full
  // bandwidth and the exchange of S bytes takes exactly S/B.
  auto sim = make_sim();
  sim.submit({{0, 1, kUncapped}, 4000.0, 0.0, 1});
  sim.submit({{1, 0, kUncapped}, 4000.0, 0.0, 2});
  const auto done = sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0].finish, 40.0);
  EXPECT_DOUBLE_EQ(done[1].finish, 40.0);
}

TEST(FlowSimulatorTest, TripleForwardingPattern) {
  // Triple checkpointing, part 1: every node sends its image to its
  // preferred buddy around the ring 0->1->2->0. Disjoint egress/ingress:
  // all three complete in S/B.
  auto sim = make_sim();
  sim.submit({{0, 1, kUncapped}, 4000.0, 0.0, 1});
  sim.submit({{1, 2, kUncapped}, 4000.0, 0.0, 2});
  sim.submit({{2, 0, kUncapped}, 4000.0, 0.0, 3});
  const auto done = sim.run();
  ASSERT_EQ(done.size(), 3u);
  for (const auto& completion : done) {
    EXPECT_DOUBLE_EQ(completion.finish, 40.0);
  }
}

TEST(FlowSimulatorTest, WholeDeliveryIsNotTorn) {
  auto sim = make_sim();
  sim.submit({{0, 1, kUncapped}, 1000.0, 0.0, 1});
  const auto done = sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_FALSE(done[0].torn);
  EXPECT_DOUBLE_EQ(done[0].delivered_bytes, done[0].bytes);
}

TEST(FlowSimulatorTest, TornDeliveryMovesOnlyThePrefix) {
  // A sender dying 40% into the transfer frees the link early and marks
  // the completion torn -- the consumer (checkpoint refill) must detect
  // and re-issue, exactly like the runtime's TornTransfer injection.
  auto sim = make_sim();
  FlowRequest request{{0, 1, kUncapped}, 1000.0, 0.0, 9};
  request.deliver_fraction = 0.4;
  sim.submit(request);
  const auto done = sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].torn);
  EXPECT_DOUBLE_EQ(done[0].bytes, 1000.0);           // what was asked
  EXPECT_DOUBLE_EQ(done[0].delivered_bytes, 400.0);  // what arrived
  EXPECT_DOUBLE_EQ(done[0].finish, 4.0);             // link freed early
  EXPECT_DOUBLE_EQ(done[0].mean_rate(), 100.0);
}

TEST(FlowSimulatorTest, TornDeliveryFreesBandwidthForContenders) {
  // Two contenders on one egress port share 50/50; when the torn flow
  // stops at its prefix, the survivor speeds up -- 250B delivered at t=5,
  // then 750B remaining at full rate: done at t=12.5.
  auto sim = make_sim();
  FlowRequest torn{{0, 1, kUncapped}, 500.0, 0.0, 1};
  torn.deliver_fraction = 0.5;
  sim.submit(torn);
  sim.submit({{0, 2, kUncapped}, 1000.0, 0.0, 2});
  const auto done = sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].tag, 1u);
  EXPECT_DOUBLE_EQ(done[0].finish, 5.0);
  EXPECT_EQ(done[1].tag, 2u);
  EXPECT_DOUBLE_EQ(done[1].finish, 12.5);
}

TEST(FlowSimulatorTest, DeliverFractionValidated) {
  auto sim = make_sim();
  FlowRequest request{{0, 1, kUncapped}, 1000.0, 0.0, 1};
  request.deliver_fraction = 0.0;
  EXPECT_THROW(sim.submit(request), std::invalid_argument);
  request.deliver_fraction = 1.5;
  EXPECT_THROW(sim.submit(request), std::invalid_argument);
}

}  // namespace
