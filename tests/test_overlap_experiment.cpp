#include "net/overlap_experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace dckpt::net;

OverlapWorkload workload() {
  OverlapWorkload w;
  w.nic_bandwidth = 128.0 * 1024 * 1024;       // B
  w.compute_time = 0.02;                       // c
  w.halo_bytes = 16.0 * 1024 * 1024;           // H -> step 0.145 s
  w.checkpoint_bytes = 512.0 * 1024 * 1024;    // S -> theta_min = 4 s
  return w;
}

TEST(OverlapWorkloadTest, DerivedQuantities) {
  const auto w = workload();
  EXPECT_DOUBLE_EQ(w.theta_min(), 4.0);
  EXPECT_NEAR(w.step_time(), 0.02 + 0.125, 1e-12);
  EXPECT_NEAR(w.app_demand(), w.halo_bytes / w.step_time(), 1e-6);
  // alpha = H / (c B) for this workload shape.
  EXPECT_NEAR(w.mechanistic_alpha(),
              w.halo_bytes / (w.compute_time * w.nic_bandwidth), 1e-9);
}

TEST(OverlapWorkloadTest, SaturatedAppHasInfiniteAlpha) {
  auto w = workload();
  w.compute_time = 0.0;  // all communication: no spare bandwidth
  EXPECT_TRUE(std::isinf(w.mechanistic_alpha()));
}

TEST(OverlapWorkloadTest, Validation) {
  auto w = workload();
  w.halo_bytes = 0.0;
  EXPECT_THROW(w.validate(), std::invalid_argument);
  w = workload();
  EXPECT_THROW(measure_overlap(w, w.theta_min() / 2.0,
                               SharingPolicy::Scavenger),
               std::invalid_argument);
}

TEST(ScavengerTest, HoldsScheduleAndLinearLaw) {
  // The scavenger policy must reproduce the paper's linear law exactly:
  // theta = theta_min + alpha (theta_min - phi).
  const auto w = workload();
  const double alpha = w.mechanistic_alpha();
  for (double factor : {1.5, 2.0, 4.0, 0.5 * (1.0 + alpha)}) {
    const double target = w.theta_min() * factor;
    const auto m = measure_overlap(w, target, SharingPolicy::Scavenger);
    // On schedule (within integration granularity of one step).
    EXPECT_NEAR(m.theta, target, w.step_time() + 1e-9) << factor;
    // Linear law.
    const double predicted_phi =
        w.theta_min() - (m.theta - w.theta_min()) / alpha;
    EXPECT_NEAR(m.phi, predicted_phi, 0.03 * w.theta_min()) << factor;
  }
}

TEST(ScavengerTest, FullOverlapBeyondThetaMax) {
  const auto w = workload();
  const double theta_max = (1.0 + w.mechanistic_alpha()) * w.theta_min();
  const auto m =
      measure_overlap(w, theta_max * 1.3, SharingPolicy::Scavenger);
  EXPECT_NEAR(m.phi, 0.0, 1e-6);
}

TEST(ScavengerTest, NearBlockingEndCostsThetaMin) {
  const auto w = workload();
  const auto m =
      measure_overlap(w, w.theta_min() * 1.001, SharingPolicy::Scavenger);
  // Almost-blocking transfer: nearly the whole theta_min of work is lost.
  EXPECT_GT(m.phi, 0.85 * w.theta_min());
  EXPECT_LE(m.phi, w.theta_min() * 1.01);
}

TEST(ScavengerTest, FittedAlphaMatchesMechanisticValue) {
  const auto w = workload();
  const auto curve =
      measure_overlap_curve(w, SharingPolicy::Scavenger, 12,
                            1.5 * (1.0 + w.mechanistic_alpha()));
  const double fitted = fit_alpha(curve, w.theta_min());
  EXPECT_NEAR(fitted, w.mechanistic_alpha(),
              0.1 * w.mechanistic_alpha());
}

TEST(FairShareTest, ParetoDominatedByScavenger) {
  // TCP-like fair sharing intrudes on the application even when idle
  // capacity would suffice. Comparing at equal *measured* transfer
  // duration, the scavenger always loses less work (and fair sharing also
  // overshoots its pacing target whenever pace > B/2).
  const auto w = workload();
  for (double factor : {1.5, 3.0, 8.0}) {
    const auto fair = measure_overlap(w, w.theta_min() * factor,
                                      SharingPolicy::FairShare);
    const auto scav =
        measure_overlap(w, fair.theta, SharingPolicy::Scavenger);
    EXPECT_LE(scav.phi, fair.phi + 1e-9) << factor;
    EXPECT_LE(scav.theta, fair.theta + w.step_time()) << factor;
  }
}

TEST(FairShareTest, ResidualOverheadAtLargeTheta) {
  // Fair sharing leaves a floor of lost work even for very stretched
  // transfers (the flow still steals halo bandwidth) -- this is why the
  // paper's phi -> 0 limit needs runtime support, not just pacing.
  const auto w = workload();
  const auto m = measure_overlap(w, w.theta_min() * 50.0,
                                 SharingPolicy::FairShare);
  EXPECT_GT(m.phi, 0.0);
}

TEST(MeasureOverlapCurveTest, MonotoneAndValidated) {
  const auto w = workload();
  const auto curve = measure_overlap_curve(w, SharingPolicy::Scavenger, 8);
  ASSERT_EQ(curve.size(), 8u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].theta, curve[i - 1].theta);
    EXPECT_LE(curve[i].phi, curve[i - 1].phi + 1e-9);
  }
  EXPECT_THROW(measure_overlap_curve(w, SharingPolicy::Scavenger, 1),
               std::invalid_argument);
  EXPECT_THROW(measure_overlap_curve(w, SharingPolicy::Scavenger, 5, 0.5),
               std::invalid_argument);
}

TEST(FitAlphaTest, ExactLineRecovered) {
  const double theta_min = 4.0, alpha = 7.0;
  std::vector<OverlapMeasurement> points;
  for (double phi : {0.5, 1.0, 2.0, 3.0}) {
    points.push_back({0.0, theta_min + alpha * (theta_min - phi), phi});
  }
  EXPECT_NEAR(fit_alpha(points, theta_min), alpha, 1e-12);
}

TEST(FitAlphaTest, RejectsDegenerateInput) {
  EXPECT_THROW(fit_alpha({}, 4.0), std::invalid_argument);
  EXPECT_THROW(fit_alpha({{0.0, 4.0, 4.0}}, 4.0), std::invalid_argument);
}

}  // namespace
