// Chaos engine vs the 2-D grid runtime: scripted geometry-aware danger
// families, campaign-scale randomized sweeps, the shadow-oracle
// differential property (with seeded shrinking), the mutation check that
// proves the classifier flags a broken protocol shape, and the grid
// extensions of the repro / JSONL export contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "chaos/chaos_api.hpp"
#include "proptest.hpp"

namespace {

using namespace dckpt;
using dckpt::ckpt::Topology;

runtime::GridConfig small_grid(Topology topology) {
  runtime::GridConfig config;
  config.topology = topology;
  config.grid_rows = topology == Topology::Pairs ? 4 : 3;
  config.grid_cols = topology == Topology::Pairs ? 4 : 3;
  config.block_rows = 6;
  config.block_cols = 6;
  config.checkpoint_interval = 8;
  config.total_steps = 64;
  // Wider than the replay distance (1 step at the scripted offset), so the
  // scripted risk-window families actually land inside the open window.
  config.rereplication_delay_steps = 6;
  config.threads = 1;
  return config;
}

chaos::ChaosCampaignConfig grid_campaign(Topology topology) {
  chaos::ChaosCampaignConfig config;
  config.grid = small_grid(topology);
  config.random_runs = 0;
  config.threads = 2;
  return config;
}

std::map<std::string, chaos::ChaosRunResult> run_scripted(
    const chaos::ChaosCampaignConfig& config) {
  const std::uint64_t reference = chaos::reference_run(config).final_hash;
  std::map<std::string, chaos::ChaosRunResult> by_name;
  for (const auto& schedule :
       chaos::scripted_grid_schedules(*config.grid)) {
    by_name[schedule.name] = chaos::run_one(config, schedule, reference);
  }
  return by_name;
}

// ------------------------------------------- scripted danger families

TEST(GridChaosScripted, FamiliesCoverTheGridGeometry) {
  const auto schedules =
      chaos::scripted_grid_schedules(small_grid(Topology::Pairs));
  const auto has = [&](const std::string& name) {
    return std::any_of(schedules.begin(), schedules.end(),
                       [&](const chaos::ChaosSchedule& s) {
                         return s.name == name;
                       });
  };
  // The generic protocol families ride along...
  EXPECT_TRUE(has("single-mid-run"));
  EXPECT_TRUE(has("group-wipe"));
  // ...plus the geometry-aware ones.
  EXPECT_TRUE(has("rack-wipe"));
  EXPECT_TRUE(has("grid-row-simultaneous"));
  EXPECT_TRUE(has("grid-column-simultaneous"));
  EXPECT_TRUE(has("grid-column-staggered"));
  EXPECT_TRUE(has("halo-neighbours-vertical"));
  EXPECT_TRUE(has("row-span-two-racks"));
  EXPECT_TRUE(has("rack-risk-window"));
  // 4 columns divide evenly into 2-wide racks: no straddling rack exists.
  EXPECT_FALSE(has("rack-straddles-rows"));
  // A 3-wide triples grid has no rack fully inside a row *boundary* --
  // racks straddle rows whenever the group size does not divide the cols.
  const auto triples =
      chaos::scripted_grid_schedules(small_grid(Topology::Triples));
  EXPECT_FALSE(std::any_of(triples.begin(), triples.end(),
                           [](const chaos::ChaosSchedule& s) {
                             return s.name == "rack-straddles-rows";
                           }));
}

TEST(GridChaosScripted, StraddlingRackFamilyAppearsWhenGeometryAllows) {
  auto config = small_grid(Topology::Pairs);
  config.grid_rows = 2;
  config.grid_cols = 3;  // racks (2,3) straddle the row boundary
  const auto schedules = chaos::scripted_grid_schedules(config);
  const auto it = std::find_if(schedules.begin(), schedules.end(),
                               [](const chaos::ChaosSchedule& s) {
                                 return s.name == "rack-straddles-rows";
                               });
  ASSERT_NE(it, schedules.end());
  // Both victims belong to one rack but to different grid rows.
  ASSERT_EQ(it->failures.size(), 2u);
  EXPECT_EQ(it->failures[0].node / 2, it->failures[1].node / 2);
  EXPECT_NE(it->failures[0].node / config.grid_cols,
            it->failures[1].node / config.grid_cols);
}

TEST(GridChaosScripted, PairsOutcomesMatchTheRackModel) {
  const auto runs = run_scripted(grid_campaign(Topology::Pairs));
  for (const auto& [name, run] : runs) {
    EXPECT_NE(run.outcome, chaos::ChaosOutcome::Violated)
        << name << ": " << run.detail << "\n  " << run.repro;
  }
  const auto outcome = [&](const std::string& name) {
    return runs.at(name).outcome;
  };
  // Losing a whole rack destroys every replica of its members, wherever
  // the rack sits in the domain.
  EXPECT_EQ(outcome("rack-wipe"), chaos::ChaosOutcome::FatalDetected);
  // A 4-wide row of 2-wide racks contains two full racks: fatal.
  EXPECT_EQ(outcome("grid-row-simultaneous"),
            chaos::ChaosOutcome::FatalDetected);
  // A column's victims are a full row length apart -- one per rack, so the
  // coordinated rollback masks all of them at once.
  EXPECT_EQ(outcome("grid-column-simultaneous"),
            chaos::ChaosOutcome::Survived);
  // Staggered column hits roll back while earlier victims' refills are
  // still pending, but each rack only ever loses one member: survivable.
  EXPECT_EQ(outcome("grid-column-staggered"),
            chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("halo-neighbours-vertical"),
            chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("row-span-two-racks"), chaos::ChaosOutcome::Survived);
  // Rack-mate lost while the first victim's refill is still pending.
  EXPECT_EQ(outcome("rack-risk-window"),
            chaos::ChaosOutcome::FatalDetected);
  // Pairs keep one remote replica: corrupting the centre rack's preferred
  // copy before the kill leaves nothing clean to restore from.
  EXPECT_EQ(outcome("rack-corrupt-preferred"),
            chaos::ChaosOutcome::FatalDetected);
  // The corruption families from the generic scripted set ride along on
  // the grid runtime too.
  EXPECT_EQ(outcome("torn-refill-in-risk-window"),
            chaos::ChaosOutcome::Survived);
  EXPECT_EQ(outcome("refill-retries-exhausted"),
            chaos::ChaosOutcome::Survived);
}

TEST(GridChaosScripted, TriplesOutcomesMatchTheRackModel) {
  const auto runs = run_scripted(grid_campaign(Topology::Triples));
  for (const auto& [name, run] : runs) {
    EXPECT_NE(run.outcome, chaos::ChaosOutcome::Violated)
        << name << ": " << run.detail << "\n  " << run.repro;
  }
  const auto outcome = [&](const std::string& name) {
    return runs.at(name).outcome;
  };
  EXPECT_EQ(outcome("rack-wipe"), chaos::ChaosOutcome::FatalDetected);
  // A 3-wide row of a 3x3 triples grid *is* one rack: fatal.
  EXPECT_EQ(outcome("grid-row-simultaneous"),
            chaos::ChaosOutcome::FatalDetected);
  // One member per rack: triples mask simultaneous cross-rack losses.
  EXPECT_EQ(outcome("grid-column-simultaneous"),
            chaos::ChaosOutcome::Survived);
  // The secondary replica absorbs the corrupted preferred copy.
  EXPECT_EQ(outcome("rack-corrupt-preferred"),
            chaos::ChaosOutcome::Survived);
  EXPECT_EQ(runs.at("rack-corrupt-preferred").report.failovers, 1u);
}

TEST(GridChaosScripted, RackRiskWindowIsMaskedOnceTheWindowCloses) {
  // The rack-risk-window plan is fatal only because of the open refill
  // window: with an instant refill the same double hit must be masked.
  auto config = grid_campaign(Topology::Pairs);
  config.grid->rereplication_delay_steps = 0;
  const auto runs = run_scripted(config);
  EXPECT_EQ(runs.at("rack-risk-window").outcome,
            chaos::ChaosOutcome::Survived);
  // Rack wipes stay fatal regardless of the window.
  EXPECT_EQ(runs.at("rack-wipe").outcome,
            chaos::ChaosOutcome::FatalDetected);
}

// --------------------------------------------------- randomized campaigns

TEST(GridChaosCampaign, TwoHundredRandomRunsPairsNeverViolate) {
  auto config = grid_campaign(Topology::Pairs);
  config.random_runs = 200;
  config.campaign_seed = 20260805;
  const auto summary = chaos::run_campaign(config);
  EXPECT_EQ(summary.violated, 0u);
  for (const auto& run : summary.runs) {
    EXPECT_NE(run.outcome, chaos::ChaosOutcome::Violated)
        << run.schedule.name << " seed " << run.schedule.seed << ": "
        << run.detail << "\n  " << run.repro;
    EXPECT_EQ(run.target, "grid");
  }
  EXPECT_GT(summary.survived, 0u);
  EXPECT_GT(summary.fatal_detected, 0u);
  EXPECT_EQ(summary.survived + summary.fatal_detected, summary.runs.size());
}

TEST(GridChaosCampaign, TwoHundredRandomRunsTriplesNeverViolate) {
  auto config = grid_campaign(Topology::Triples);
  config.random_runs = 200;
  config.campaign_seed = 20260805;
  const auto summary = chaos::run_campaign(config);
  EXPECT_EQ(summary.violated, 0u);
  EXPECT_GT(summary.survived, 0u);
  EXPECT_GT(summary.fatal_detected, 0u);
}

// ------------------------------------------- shadow-vs-runtime property

struct GridDifferentialCase {
  chaos::ChaosCampaignConfig config;
  chaos::ChaosSchedule schedule;
};

TEST(GridChaosProperty, ShadowOracleMatchesGridRuntimeOnRandomShapes) {
  // Differential: random grid geometries, protocol shapes, and adversarial
  // schedules through the real GridCoordinator, classified against the
  // generalized oracle. Any Violated outcome is a parity bug; shrinking
  // drops failures one at a time to report a minimal counterexample.
  proptest::ForallConfig forall_config;
  forall_config.seed = 0x9f1d;
  forall_config.iterations = 80;
  proptest::forall<GridDifferentialCase>(
      forall_config,
      [](proptest::Gen& gen) {
        GridDifferentialCase c;
        runtime::GridConfig grid;
        const bool pairs = gen.boolean();
        grid.topology = pairs ? Topology::Pairs : Topology::Triples;
        // Keep nodes a multiple of the group size by construction.
        grid.grid_rows = gen.integer(1, 4);
        grid.grid_cols = pairs ? 2 * gen.integer(1, 2) : 3;
        grid.block_rows = gen.integer(2, 6);
        grid.block_cols = gen.integer(2, 6);
        grid.checkpoint_interval = gen.integer(3, 12);
        grid.total_steps = grid.checkpoint_interval * gen.integer(2, 5);
        grid.rereplication_delay_steps = gen.integer(0, 8);
        grid.threads = 1;
        c.config.grid = grid;
        c.schedule = chaos::random_schedule(chaos::ShadowConfig(grid),
                                            gen.rng()(), 5);
        return c;
      },
      [](const GridDifferentialCase& c) -> std::optional<std::string> {
        const std::uint64_t reference =
            chaos::reference_run(c.config).final_hash;
        const auto run = chaos::run_one(c.config, c.schedule, reference);
        if (run.outcome == chaos::ChaosOutcome::Violated) {
          return run.detail + " [" + run.repro + "]";
        }
        return std::nullopt;
      },
      [](const GridDifferentialCase& c) {
        std::vector<GridDifferentialCase> candidates;
        for (std::size_t drop = 0; drop < c.schedule.failures.size();
             ++drop) {
          if (c.schedule.failures.size() == 1) break;
          GridDifferentialCase smaller = c;
          smaller.schedule.failures.erase(
              smaller.schedule.failures.begin() +
              static_cast<std::ptrdiff_t>(drop));
          candidates.push_back(std::move(smaller));
        }
        return candidates;
      },
      [](const GridDifferentialCase& c) {
        return chaos::repro_command(c.config, c.schedule);
      });
}

// ------------------------------------------------------- mutation check

TEST(GridChaosMutation, BrokenCommitOrderingIsClassifiedViolated) {
  // Acceptance criterion: a deliberately broken grid commit ordering must
  // be caught, not silently survived. classify_run() is the seam -- feed
  // the classifier a prediction from a protocol shape whose commits land
  // at the wrong steps (the oracle's view of a runtime that commits on a
  // different cadence) and the counter comparison must flag it.
  auto config = grid_campaign(Topology::Pairs);
  const std::uint64_t reference = chaos::reference_run(config).final_hash;
  chaos::ChaosSchedule schedule{"mutation-probe", {{13, 2}}, 0};

  chaos::ShadowConfig mutated = config.shadow();
  mutated.checkpoint_interval += 1;  // broken ordering: commits drift
  const auto wrong_prediction =
      chaos::predict_outcome(mutated, schedule.failures);
  const auto run = chaos::classify_run(config, schedule, wrong_prediction,
                                       reference);
  EXPECT_EQ(run.outcome, chaos::ChaosOutcome::Violated);
  EXPECT_NE(run.detail.find("diverges from the oracle"), std::string::npos)
      << run.detail;
  EXPECT_NE(run.repro.find("--grid=4x4"), std::string::npos) << run.repro;

  // Control: the honest prediction classifies the same run as survivable.
  const auto honest = chaos::run_one(config, schedule, reference);
  EXPECT_EQ(honest.outcome, chaos::ChaosOutcome::Survived) << honest.detail;
}

// ------------------------------------------------------- reproducibility

TEST(GridChaosRepro, CommandCarriesGridGeometryAndReplays) {
  auto config = grid_campaign(Topology::Pairs);
  config.random_runs = 25;
  const auto summary = chaos::run_campaign(config);
  for (const auto& run : summary.runs) {
    EXPECT_NE(run.repro.find("dckpt chaos"), std::string::npos);
    EXPECT_NE(run.repro.find("--grid=4x4"), std::string::npos) << run.repro;
    EXPECT_NE(run.repro.find("--block=6x6"), std::string::npos) << run.repro;
    // Chain-only knobs must not leak into grid repro lines.
    EXPECT_EQ(run.repro.find("--cells="), std::string::npos) << run.repro;
    EXPECT_EQ(run.repro.find("--staging="), std::string::npos) << run.repro;
    EXPECT_NE(run.repro.find("--schedule=" + run.schedule.spec()),
              std::string::npos);
    auto replay = chaos::ChaosSchedule::parse(run.schedule.spec());
    const auto again =
        chaos::run_one(config, replay, summary.reference_hash);
    EXPECT_EQ(again.outcome, run.outcome);
    EXPECT_EQ(again.report.final_hash, run.report.final_hash);
    EXPECT_EQ(again.report.risk_steps, run.report.risk_steps);
  }
}

// ------------------------------------------------------------- export

TEST(GridChaosExport, RecordsCarryAppendedTargetFields) {
  auto config = grid_campaign(Topology::Pairs);
  config.random_runs = 5;
  const auto summary = chaos::run_campaign(config);
  std::ostringstream out;
  chaos::write_campaign_jsonl(out, summary);
  const auto lines = util::parse_jsonl(out.str());
  ASSERT_EQ(lines.size(), summary.runs.size() + 1);
  EXPECT_EQ(lines[0].at("record").as_string(), "chaos_campaign");
  EXPECT_EQ(lines[0].at("target").as_string(), "grid");
  EXPECT_EQ(lines[0].at("grid").as_string(), "4x4");
  EXPECT_EQ(lines[0].at("block").as_string(), "6x6");
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].at("record").as_string(), "chaos_run");
    EXPECT_EQ(lines[i].at("target").as_string(), "grid");
  }
}

TEST(GridChaosExport, ChainRecordsKeepTheChainTargetId) {
  // Append-only schema: chain campaigns gain the "target" key too (stable
  // id "chain") and never the grid geometry keys.
  chaos::ChaosCampaignConfig config;
  config.runtime.nodes = 4;
  config.runtime.total_steps = 24;
  config.runtime.checkpoint_interval = 6;
  config.runtime.cells_per_node = 16;
  config.random_runs = 2;
  config.threads = 1;
  const auto summary = chaos::run_campaign(config);
  std::ostringstream out;
  chaos::write_campaign_jsonl(out, summary);
  const auto lines = util::parse_jsonl(out.str());
  EXPECT_EQ(lines[0].at("target").as_string(), "chain");
  EXPECT_FALSE(lines[0].contains("grid"));
  EXPECT_FALSE(lines[0].contains("block"));
  EXPECT_EQ(lines[1].at("target").as_string(), "chain");
}

// ------------------------------------------------------ silent errors

TEST(GridChaosSdc, LatentStrikeMatchesTheChainLadderMath) {
  // Same geometry-free ladder arithmetic as the chain test: interval 12,
  // k = 4, strike at 13 -> verification at 48 walks {36, 24, 12}, rollback
  // depth 2, replay 36 steps. The grid commits immediately, so commit steps
  // line up with the chain's.
  auto config = grid_campaign(Topology::Pairs);
  config.grid->checkpoint_interval = 12;
  config.grid->total_steps = 96;
  config.grid->verify_every = 4;
  config.grid->keep_last = 3;
  const auto schedule = chaos::ChaosSchedule::parse("13:sdc:0");
  const auto run = chaos::run_one(config, schedule,
                                  chaos::reference_run(config).final_hash);
  EXPECT_EQ(run.outcome, chaos::ChaosOutcome::Survived) << run.detail;
  EXPECT_EQ(run.report.sdc_injected, 1u);
  EXPECT_EQ(run.report.sdc_detected, 1u);
  EXPECT_EQ(run.report.rollback_depth, 2u);
  EXPECT_EQ(run.report.replayed_steps, 36u);
  // Shallow retention flips the same schedule to detected-fatal.
  config.grid->keep_last = 2;
  const auto fatal = chaos::run_one(config, schedule,
                                    chaos::reference_run(config).final_hash);
  EXPECT_EQ(fatal.outcome, chaos::ChaosOutcome::FatalDetected)
      << fatal.detail;
}

TEST(GridChaosSdc, RandomizedSdcGridCampaignNeverViolates) {
  auto config = grid_campaign(Topology::Triples);
  config.grid->verify_every = 2;
  config.grid->keep_last = 3;
  config.random_runs = 60;
  config.campaign_seed = 20260809;
  const auto summary = chaos::run_campaign(config);
  EXPECT_EQ(summary.violated, 0u);
  for (const auto& run : summary.runs) {
    EXPECT_NE(run.outcome, chaos::ChaosOutcome::Violated)
        << run.schedule.name << " seed " << run.schedule.seed << ": "
        << run.detail << "\n  " << run.repro;
  }
}

}  // namespace
