#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace {

using dckpt::util::SplitMix64;
using dckpt::util::Xoshiro256ss;

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GE(differing, 60);
}

TEST(Xoshiro256Test, Deterministic) {
  Xoshiro256ss a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, NextDoubleInHalfOpenUnitInterval) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Xoshiro256Test, NextDoubleOpenZeroNeverReturnsZero) {
  Xoshiro256ss rng(8);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_GT(rng.next_double_open_zero(), 0.0);
    ASSERT_LE(rng.next_double_open_zero(), 1.0);
  }
}

TEST(Xoshiro256Test, MeanOfUniformDoublesIsHalf) {
  Xoshiro256ss rng(9);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Xoshiro256Test, NextBelowRespectsBound) {
  Xoshiro256ss rng(10);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.next_below(bound), bound);
  }
}

TEST(Xoshiro256Test, NextBelowZeroBoundReturnsZero) {
  Xoshiro256ss rng(10);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Xoshiro256Test, NextBelowIsRoughlyUniform) {
  Xoshiro256ss rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBound)];
  for (std::uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(counts[v], kDraws / kBound, 500) << "value " << v;
  }
}

TEST(Xoshiro256Test, JumpChangesState) {
  Xoshiro256ss rng(12);
  Xoshiro256ss jumped = rng;
  jumped.jump();
  EXPECT_NE(rng, jumped);
  EXPECT_NE(rng(), jumped());
}

TEST(Xoshiro256Test, SplitStreamsAreDistinct) {
  const Xoshiro256ss base(13);
  auto s0 = base.split(0);
  auto s1 = base.split(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(s0());
    seen.insert(s1());
  }
  // Two overlapping streams would collide heavily; distinct streams of a
  // 2^256-period generator essentially never collide in 2000 draws.
  EXPECT_EQ(seen.size(), 2000u);
}

TEST(Xoshiro256Test, SplitDoesNotPerturbParent) {
  const Xoshiro256ss base(14);
  Xoshiro256ss copy = base;
  (void)base.split(3);
  EXPECT_EQ(base, copy);
}

TEST(Xoshiro256Test, FillMatchesSequentialDraws) {
  Xoshiro256ss a(99), b(99);
  std::vector<std::uint64_t> out(67);  // odd size exercises the tail loop
  a.fill(out.data(), out.size());
  for (const auto word : out) EXPECT_EQ(word, b());
  // fill(.., 0) is a no-op; the stream continues where it left off.
  a.fill(out.data(), 0);
  EXPECT_EQ(a(), b());
  a.fill(out.data(), 3);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], b());
}

TEST(Xoshiro256Test, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256ss::min() == 0);
  static_assert(Xoshiro256ss::max() == ~std::uint64_t{0});
  Xoshiro256ss rng(15);
  EXPECT_NE(rng(), rng());
}

}  // namespace
