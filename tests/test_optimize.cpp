#include "sim/optimize.hpp"

#include <gtest/gtest.h>

#include "model/period.hpp"
#include "model/scenario.hpp"
#include "model/waste.hpp"

namespace {

using namespace dckpt;
using namespace dckpt::sim;

SimConfig base_config(double mtbf = 1500.0) {
  SimConfig config;
  config.protocol = model::Protocol::DoubleNbl;
  config.params = model::base_scenario().at_phi_ratio(0.25).with_mtbf(mtbf);
  config.params.nodes = 12;
  config.t_base = 20.0 * mtbf;
  return config;
}

OptimizeOptions quick_options() {
  OptimizeOptions options;
  options.trials_per_eval = 24;
  options.threads = 2;
  options.max_iterations = 25;
  return options;
}

TEST(OptimizePeriodTest, LandsNearTheModelOptimum) {
  const auto config = base_config();
  const auto model_opt =
      model::optimal_period_closed_form(config.protocol, config.params);
  const auto empirical =
      optimize_period_empirically(config, quick_options());
  ASSERT_TRUE(model_opt.feasible);
  // The simulated waste curve is flat near its minimum: accept a factor-2
  // bracket around the closed form.
  EXPECT_GT(empirical.period, model_opt.period / 2.0);
  EXPECT_LT(empirical.period, model_opt.period * 2.0);
  EXPECT_GT(empirical.evaluations, 10);
}

TEST(OptimizePeriodTest, EmpiricalWasteNotWorseThanModelPeriodWaste) {
  // By construction the empirical optimum minimizes simulated waste, so it
  // can only match or beat simulating at the model's period (same seeds).
  const auto config = base_config();
  const auto options = quick_options();
  const auto empirical = optimize_period_empirically(config, options);

  SimConfig at_model = config;
  at_model.period =
      model::optimal_period_closed_form(config.protocol, config.params)
          .period;
  at_model.stop_on_fatal = false;
  MonteCarloOptions mc;
  mc.trials = options.trials_per_eval * 4;
  mc.seed = options.seed;
  mc.threads = 2;
  const auto model_mc = run_monte_carlo(at_model, mc);
  EXPECT_LE(empirical.waste,
            model_mc.waste.mean() + 3.0 * model_mc.waste.standard_error());
}

TEST(OptimizePeriodTest, ReportsConfidence) {
  const auto empirical =
      optimize_period_empirically(base_config(), quick_options());
  EXPECT_GT(empirical.waste, 0.0);
  EXPECT_LT(empirical.waste, 1.0);
  EXPECT_GT(empirical.waste_halfwidth, 0.0);
  EXPECT_LT(empirical.waste_halfwidth, empirical.waste);
}

TEST(OptimizePeriodTest, TripleBoundaryOptimumAtZeroOverhead) {
  // phi = 0: checkpointing is free for Triple, so shorter periods always
  // win and the search must end at (or very near) the minimum period.
  SimConfig config = base_config();
  config.protocol = model::Protocol::Triple;
  config.params = config.params.with_overhead(0.0);
  const double lo = model::min_period(config.protocol, config.params);
  const auto empirical =
      optimize_period_empirically(config, quick_options());
  EXPECT_LT(empirical.period, lo * 1.25);
}

}  // namespace
