// Minimal property-test harness for gtest: seeded generators, a
// forall-with-shrinking driver, and failure-seed reporting.
//
// Every iteration draws its value from an independent split of the root
// seed, so a reported failure reproduces in isolation:
//
//   proptest::ForallConfig config;            // seed + iteration count
//   proptest::forall(config, draw, property, shrink, show);
//
//   draw(Gen&)            -> Value            (seeded generator)
//   property(const Value&)-> std::optional<std::string>  (nullopt = holds,
//                            message = why it failed)
//   shrink(const Value&)  -> std::vector<Value>   (smaller candidates; {}
//                            stops shrinking; optional)
//   show(const Value&)    -> std::string          (for the failure report)
//
// On failure the driver greedily walks to a local minimum -- repeatedly
// re-testing shrink candidates and descending into the first one that still
// fails -- then reports seed, iteration and the shrunk counterexample
// through ADD_FAILURE(), so the gtest output alone is enough to replay:
// rerun with ForallConfig{seed, iteration + 1} and only the reported
// iteration's stream reaches the property.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace proptest {

/// Seeded draw context handed to generators. Thin sugar over the repo's
/// Xoshiro256ss so generators compose by just passing `Gen&` around.
class Gen {
 public:
  explicit Gen(std::uint64_t seed) : rng_(seed) {}

  dckpt::util::Xoshiro256ss& rng() noexcept { return rng_; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * rng_.next_double();
  }

  /// Log-uniform double in [lo, hi), lo > 0: every decade equally likely.
  /// The natural draw for scale parameters (MTBFs, costs, periods).
  double log_uniform(double lo, double hi) {
    return lo * std::exp(rng_.next_double() * std::log(hi / lo));
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t integer(std::uint64_t lo, std::uint64_t hi) {
    return lo + rng_.next_below(hi - lo + 1);
  }

  bool boolean() { return rng_.next_below(2) == 1; }

  /// Uniformly picked element of a non-empty list.
  template <typename T>
  T element(const std::vector<T>& choices) {
    return choices[rng_.next_below(choices.size())];
  }

 private:
  dckpt::util::Xoshiro256ss rng_;
};

struct ForallConfig {
  std::uint64_t seed = 0x5eed;
  std::uint64_t iterations = 200;
  std::uint64_t max_shrink_rounds = 64;  ///< greedy descent bound
};

/// Derives the independent generator seed for one iteration; exposed so a
/// test can replay exactly the reported failing draw.
inline std::uint64_t iteration_seed(std::uint64_t root_seed,
                                    std::uint64_t iteration) {
  // SplitMix64 over (seed, index): decorrelates neighbouring iterations.
  dckpt::util::SplitMix64 mix(root_seed ^
                              (iteration * 0x9e3779b97f4a7c15ULL));
  return mix.next();
}

template <typename Value>
using Property = std::function<std::optional<std::string>(const Value&)>;

template <typename Value>
using Shrinker = std::function<std::vector<Value>(const Value&)>;

template <typename Value>
using Show = std::function<std::string(const Value&)>;

/// Checks `property` on `config.iterations` generated values. Returns true
/// when every iteration held; reports the (shrunk) counterexample through
/// ADD_FAILURE() otherwise.
template <typename Value>
bool forall(const ForallConfig& config,
            const std::function<Value(Gen&)>& draw,
            const Property<Value>& property,
            const Shrinker<Value>& shrink = nullptr,
            const Show<Value>& show = nullptr) {
  for (std::uint64_t i = 0; i < config.iterations; ++i) {
    Gen gen(iteration_seed(config.seed, i));
    Value value = draw(gen);
    std::optional<std::string> failure = property(value);
    if (!failure) continue;

    std::uint64_t shrink_steps = 0;
    if (shrink) {
      // Greedy descent: take the first still-failing candidate each round.
      for (std::uint64_t round = 0;
           round < config.max_shrink_rounds; ++round) {
        bool descended = false;
        for (Value& candidate : shrink(value)) {
          if (auto candidate_failure = property(candidate)) {
            value = std::move(candidate);
            failure = std::move(candidate_failure);
            ++shrink_steps;
            descended = true;
            break;
          }
        }
        if (!descended) break;
      }
    }

    std::string report = "property failed at iteration " +
                         std::to_string(i) + " (seed " +
                         std::to_string(config.seed) + ", iteration seed " +
                         std::to_string(iteration_seed(config.seed, i)) +
                         ")";
    if (shrink_steps > 0) {
      report += " after " + std::to_string(shrink_steps) + " shrink steps";
    }
    report += ": " + *failure;
    if (show) report += "\n  counterexample: " + show(value);
    ADD_FAILURE() << report;
    return false;
  }
  return true;
}

/// Shrink-by-halving helpers: candidates move half the remaining distance
/// toward `target`, so the descent terminates at a near-minimal failure.
inline std::vector<double> halve_toward(double value, double target) {
  if (value == target) return {};
  std::vector<double> candidates{target};
  const double mid = target + (value - target) / 2.0;
  if (mid != value && mid != target) candidates.push_back(mid);
  return candidates;
}

inline std::vector<std::uint64_t> halve_toward(std::uint64_t value,
                                               std::uint64_t target) {
  if (value == target) return {};
  std::vector<std::uint64_t> candidates{target};
  const std::uint64_t mid = value > target
                                ? target + (value - target) / 2
                                : target - (target - value) / 2;
  if (mid != value && mid != target) candidates.push_back(mid);
  return candidates;
}

}  // namespace proptest
