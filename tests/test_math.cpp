#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace dckpt::util;

TEST(GoldenSectionTest, FindsParabolaMinimum) {
  const auto result = minimize_golden_section(
      [](double x) { return (x - 3.0) * (x - 3.0) + 2.0; }, -10.0, 10.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, 3.0, 1e-6);
  EXPECT_NEAR(result.value, 2.0, 1e-10);
}

TEST(GoldenSectionTest, BoundaryMinimum) {
  const auto result =
      minimize_golden_section([](double x) { return x; }, 1.0, 5.0);
  EXPECT_NEAR(result.x, 1.0, 1e-6);
}

TEST(GoldenSectionTest, RejectsEmptyInterval) {
  EXPECT_THROW(minimize_golden_section([](double x) { return x; }, 2.0, 1.0),
               std::invalid_argument);
}

TEST(BrentMinimizeTest, FindsParabolaMinimumFast) {
  const auto result = minimize_brent(
      [](double x) { return (x - 1.25) * (x - 1.25); }, -4.0, 4.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, 1.25, 1e-7);
  EXPECT_LT(result.iterations, 60);
}

TEST(BrentMinimizeTest, NonSmoothUnimodal) {
  const auto result =
      minimize_brent([](double x) { return std::abs(x - 0.7); }, -2.0, 3.0);
  EXPECT_NEAR(result.x, 0.7, 1e-6);
}

TEST(BrentMinimizeTest, WasteShapedObjective) {
  // c1/P + c2*P is the skeleton of the checkpoint waste; min at sqrt(c1/c2).
  const double c1 = 12.0, c2 = 0.5;
  const auto result = minimize_brent(
      [&](double p) { return c1 / p + c2 * p; }, 0.01, 100.0);
  EXPECT_NEAR(result.x, std::sqrt(c1 / c2), 1e-5);
}

TEST(BisectionTest, FindsRoot) {
  const auto result = find_root_bisection(
      [](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, std::sqrt(2.0), 1e-9);
}

TEST(BisectionTest, ExactEndpointRoot) {
  const auto result =
      find_root_bisection([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.x, 0.0);
}

TEST(BisectionTest, RejectsSameSign) {
  EXPECT_THROW(find_root_bisection([](double x) { return x * x + 1.0; }, -1.0,
                                   1.0),
               std::invalid_argument);
}

TEST(KahanSumTest, CompensatesSmallAdditions) {
  KahanSum sum;
  sum.add(1e16);
  for (int i = 0; i < 10000; ++i) sum.add(1.0);
  sum.add(-1e16);
  EXPECT_DOUBLE_EQ(sum.value(), 10000.0);
}

TEST(KahanSumTest, OperatorPlusEquals) {
  KahanSum sum;
  sum += 1.5;
  sum += 2.5;
  EXPECT_DOUBLE_EQ(sum.value(), 4.0);
}

TEST(ApproxEqualTest, RelativeAndAbsolute) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(approx_equal(0.0, 1e-13));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1e6, 1e6 * (1.0 + 1e-10)));
}

TEST(ClampTest, Basics) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(2.0, 0.0, 3.0), 2.0);
}

TEST(LogSpaceTest, EndpointsAndMonotonicity) {
  const auto grid = log_space(1.0, 1000.0, 4);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_NEAR(grid.front(), 1.0, 1e-12);
  EXPECT_NEAR(grid.back(), 1000.0, 1e-9);
  EXPECT_NEAR(grid[1], 10.0, 1e-9);
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_GT(grid[i], grid[i - 1]);
}

TEST(LogSpaceTest, SinglePointAndErrors) {
  EXPECT_EQ(log_space(2.0, 8.0, 1).size(), 1u);
  EXPECT_THROW(log_space(0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(log_space(1.0, 0.5, 3), std::invalid_argument);
  EXPECT_THROW(log_space(1.0, 2.0, 0), std::invalid_argument);
}

TEST(LinSpaceTest, EndpointsAndSpacing) {
  const auto grid = lin_space(0.0, 1.0, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid[0], 0.0);
  EXPECT_DOUBLE_EQ(grid[2], 0.5);
  EXPECT_DOUBLE_EQ(grid[4], 1.0);
}

TEST(LerpTest, Basics) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 1.0), 4.0);
}

}  // namespace
