#include "model/message_logging.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/period.hpp"
#include "model/scenario.hpp"
#include "model/waste.hpp"

namespace {

using namespace dckpt::model;

MessageLoggingParams make_params(double mtbf = 600.0, double beta = 0.05) {
  MessageLoggingParams params;
  params.platform = base_scenario().at_phi_ratio(0.25).with_mtbf(mtbf);
  params.logging_overhead = beta;
  return params;
}

TEST(MessageLoggingWasteTest, ComposesThreeFactors) {
  const auto params = make_params();
  const double period = 300.0;
  const auto& p = params.platform;
  const double ff = waste_fault_free(Protocol::DoubleNbl, p, period);
  const double fail =
      expected_failure_cost(Protocol::DoubleNbl, p, period) /
      (p.mtbf * static_cast<double>(p.nodes));
  const double expected = 1.0 - 0.95 * (1.0 - ff) * (1.0 - fail);
  EXPECT_NEAR(message_logging_waste(params, period), expected, 1e-12);
}

TEST(MessageLoggingWasteTest, BetaIsAHardFloor) {
  // Even on a failure-free platform the logging overhead remains.
  auto params = make_params(1e12, 0.08);
  const auto opt = optimal_message_logging_period(params);
  EXPECT_GE(opt.waste, 0.08 - 1e-9);
  EXPECT_LT(opt.waste, 0.09);
}

TEST(MessageLoggingWasteTest, Validation) {
  auto params = make_params();
  params.logging_overhead = 1.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = make_params();
  params.logging_overhead = -0.1;
  EXPECT_THROW(message_logging_waste(params, 100.0), std::invalid_argument);
}

TEST(OptimalLoggingPeriodTest, NodeScaleYoungFormula) {
  const auto params = make_params(600.0);
  const auto& p = params.platform;
  const auto opt = optimal_message_logging_period(params);
  const double expected = std::sqrt(
      2.0 * (p.local_ckpt + p.overhead) *
      (p.node_mtbf() - p.downtime - p.recovery() - p.theta()));
  ASSERT_FALSE(opt.clamped);
  EXPECT_NEAR(opt.period, expected, 1e-9);
}

TEST(OptimalLoggingPeriodTest, MuchLongerThanCoordinatedPeriod) {
  // Rollbacks are local, so checkpoints can be ~sqrt(n) rarer.
  const auto params = make_params(600.0);
  const auto logging = optimal_message_logging_period(params);
  const auto coordinated =
      optimal_period_closed_form(Protocol::DoubleNbl, params.platform);
  EXPECT_GT(logging.period, 10.0 * coordinated.period);
}

TEST(OptimalLoggingPeriodTest, FailureWasteNearlyVanishes) {
  // At the optimum, the failure term is ~sqrt(2 delta/(n M)) -- negligible
  // even on a hostile platform; beta dominates.
  const auto params = make_params(120.0, 0.05);
  const auto opt = optimal_message_logging_period(params);
  ASSERT_TRUE(opt.feasible);
  EXPECT_LT(opt.waste, 0.08);
}

TEST(CrossoverTest, LoggingWinsAtLowMtbf) {
  // On a brutal platform the coordinated protocols waste most of the
  // machine while logging only pays beta: logging must win.
  const auto params = make_params(60.0, 0.05);
  const double logging = optimal_message_logging_period(params).waste;
  const double coordinated = waste_at_optimal_period(
      Protocol::DoubleNbl, params.platform);
  EXPECT_LT(logging, coordinated);
}

TEST(CrossoverTest, CoordinatedWinsAtHighMtbf) {
  const auto params = make_params(86400.0, 0.05);
  const double logging = optimal_message_logging_period(params).waste;
  const double coordinated = waste_at_optimal_period(
      Protocol::DoubleNbl, params.platform);
  EXPECT_GT(logging, coordinated);
}

TEST(CrossoverTest, BisectionFindsTheBoundary) {
  const auto params = make_params(600.0, 0.05);
  const double crossover =
      logging_crossover_mtbf(params, Protocol::DoubleNbl);
  ASSERT_TRUE(std::isfinite(crossover));
  ASSERT_GT(crossover, 0.0);
  // Just below: logging wins; just above: coordinated wins.
  auto below = params;
  below.platform = params.platform.with_mtbf(crossover * 0.8);
  EXPECT_LT(optimal_message_logging_period(below).waste,
            waste_at_optimal_period(Protocol::DoubleNbl, below.platform));
  auto above = params;
  above.platform = params.platform.with_mtbf(crossover * 1.25);
  EXPECT_GT(optimal_message_logging_period(above).waste,
            waste_at_optimal_period(Protocol::DoubleNbl, above.platform));
}

TEST(CrossoverTest, HigherBetaLowersTheCrossover) {
  const auto cheap = make_params(600.0, 0.02);
  const auto pricey = make_params(600.0, 0.15);
  const double cheap_cross =
      logging_crossover_mtbf(cheap, Protocol::DoubleNbl);
  const double pricey_cross =
      logging_crossover_mtbf(pricey, Protocol::DoubleNbl);
  EXPECT_GT(cheap_cross, pricey_cross);
}

TEST(CrossoverTest, DegenerateBrackets) {
  const auto params = make_params(600.0, 0.0);
  // Free logging with local rollback: wins across any realistic bracket.
  EXPECT_TRUE(std::isinf(
      logging_crossover_mtbf(params, Protocol::DoubleNbl, 10.0, 3600.0)));
  // Absurdly expensive logging never wins.
  auto expensive = make_params(600.0, 0.9);
  EXPECT_DOUBLE_EQ(logging_crossover_mtbf(expensive, Protocol::Triple,
                                          3600.0, 86400.0),
                   0.0);
}

}  // namespace
