#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace {

using dckpt::util::ProportionEstimate;
using dckpt::util::RunningStats;

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.standard_error(), 0.0);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  const std::vector<double> data = {1.0, 2.5, -3.0, 7.25, 0.0, 2.0};
  RunningStats stats;
  for (double x : data) stats.add(x);
  double mean = 0.0;
  for (double x : data) mean += x;
  mean /= static_cast<double>(data.size());
  double var = 0.0;
  for (double x : data) var += (x - mean) * (x - mean);
  var /= static_cast<double>(data.size() - 1);
  EXPECT_EQ(stats.count(), data.size());
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), -3.0);
  EXPECT_DOUBLE_EQ(stats.max(), 7.25);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  dckpt::util::Xoshiro256ss rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 10.0 - 5.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  RunningStats b = a;
  b.merge(empty);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStatsTest, NumericallyStableAroundLargeOffset) {
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) stats.add(1e9 + (i % 2));
  EXPECT_NEAR(stats.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(stats.variance(), 0.25 * 1000.0 / 999.0, 1e-6);
}

TEST(RunningStatsTest, ConfidenceHalfwidthShrinks) {
  RunningStats small, large;
  dckpt::util::Xoshiro256ss rng(4);
  for (int i = 0; i < 100; ++i) small.add(rng.next_double());
  for (int i = 0; i < 10000; ++i) large.add(rng.next_double());
  EXPECT_GT(small.confidence_halfwidth(), large.confidence_halfwidth());
}

TEST(ProportionEstimateTest, EstimateAndCounts) {
  ProportionEstimate p;
  for (int i = 0; i < 80; ++i) p.add(true);
  for (int i = 0; i < 20; ++i) p.add(false);
  EXPECT_EQ(p.trials(), 100u);
  EXPECT_EQ(p.successes(), 80u);
  EXPECT_DOUBLE_EQ(p.estimate(), 0.8);
}

TEST(ProportionEstimateTest, WilsonIntervalContainsEstimate) {
  ProportionEstimate p;
  for (int i = 0; i < 95; ++i) p.add(true);
  for (int i = 0; i < 5; ++i) p.add(false);
  const auto ci = p.wilson_interval();
  EXPECT_LT(ci.lo, p.estimate());
  EXPECT_GT(ci.hi, p.estimate());
  EXPECT_GE(ci.lo, 0.0);
  EXPECT_LE(ci.hi, 1.0);
}

TEST(ProportionEstimateTest, WilsonNonDegenerateAtExtremes) {
  ProportionEstimate p;
  for (int i = 0; i < 50; ++i) p.add(true);
  const auto ci = p.wilson_interval();
  // All successes: Wald CI would be [1, 1]; Wilson keeps a meaningful lo.
  EXPECT_LT(ci.lo, 1.0);
  EXPECT_GT(ci.lo, 0.8);
  EXPECT_DOUBLE_EQ(ci.hi, 1.0);
}

TEST(ProportionEstimateTest, MergeAccumulates) {
  ProportionEstimate a, b;
  a.add(true);
  b.add(false);
  b.add(true);
  a.merge(b);
  EXPECT_EQ(a.trials(), 3u);
  EXPECT_EQ(a.successes(), 2u);
}

TEST(ProportionEstimateTest, EmptyInterval) {
  ProportionEstimate p;
  const auto ci = p.wilson_interval();
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_DOUBLE_EQ(ci.hi, 0.0);
}

}  // namespace
