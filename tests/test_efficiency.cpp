#include "model/efficiency.hpp"

#include <gtest/gtest.h>

#include "model/risk.hpp"
#include "model/scenario.hpp"

namespace {

using namespace dckpt::model;

Parameters params_with(double phi_ratio, double mtbf = 7 * 3600.0) {
  return base_scenario().at_phi_ratio(phi_ratio).with_mtbf(mtbf);
}

TEST(EvaluateProtocolsTest, ProducesOneRowPerProtocol) {
  const auto rows = evaluate_protocols(
      {Protocol::DoubleNbl, Protocol::Triple}, params_with(0.25), 86400.0);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].protocol, Protocol::DoubleNbl);
  EXPECT_EQ(rows[1].protocol, Protocol::Triple);
  for (const auto& row : rows) {
    EXPECT_GT(row.optimum.period, 0.0);
    EXPECT_GT(row.risk_window, 0.0);
    EXPECT_GT(row.success_probability, 0.0);
    EXPECT_LE(row.success_probability, 1.0);
  }
}

TEST(WasteRatioTest, IdenticalProtocolsGiveOne) {
  EXPECT_DOUBLE_EQ(
      waste_ratio(Protocol::DoubleNbl, Protocol::DoubleNbl, params_with(0.5)),
      1.0);
}

TEST(WasteRatioTest, BofNeverBeatsNblFigure5) {
  // Fig. 5: DoubleBoF/DoubleNBL >= 1 across the whole phi sweep, converging
  // to ~1 when overlap is free.
  for (double ratio : {0.05, 0.2, 0.5, 0.8, 1.0}) {
    const double r =
        waste_ratio(Protocol::DoubleBof, Protocol::DoubleNbl,
                    params_with(ratio));
    EXPECT_GE(r, 1.0 - 1e-9) << "phi/R = " << ratio;
  }
}

TEST(WasteRatioTest, TripleWinsAtLowOverheadFigure5) {
  // Fig. 5: Triple has much smaller waste for phi/R <= 0.5...
  EXPECT_LT(waste_ratio(Protocol::Triple, Protocol::DoubleNbl,
                        params_with(0.1)),
            0.75);
  // ...and is within ~15% above NBL in the worst case phi/R -> 1.
  EXPECT_LT(waste_ratio(Protocol::Triple, Protocol::DoubleNbl,
                        params_with(1.0)),
            1.20);
}

TEST(BestProtocolTest, ByWastePrefersTripleAtLowPhi) {
  const auto best = best_protocol_by_waste(
      {Protocol::DoubleNbl, Protocol::DoubleBof, Protocol::Triple},
      params_with(0.1));
  EXPECT_EQ(best, Protocol::Triple);
}

TEST(BestProtocolTest, ByRiskPrefersTriple) {
  const auto best = best_protocol_by_risk(
      {Protocol::DoubleNbl, Protocol::DoubleBof, Protocol::Triple},
      params_with(0.5, 60.0), 30.0 * 86400.0);
  EXPECT_EQ(best, Protocol::Triple);
}

TEST(BestProtocolTest, RejectsEmptySets) {
  EXPECT_THROW(best_protocol_by_waste({}, params_with(0.5)),
               std::invalid_argument);
  EXPECT_THROW(best_protocol_by_risk({}, params_with(0.5), 1.0),
               std::invalid_argument);
}

TEST(EvaluateProtocolsTest, RiskColumnsConsistentWithRiskModule) {
  const auto params = params_with(0.5, 600.0);
  const double mission = 86400.0;
  const auto rows = evaluate_protocols(
      {Protocol::DoubleNbl, Protocol::DoubleBof, Protocol::Triple,
       Protocol::TripleBof},
      params, mission);
  for (const auto& row : rows) {
    EXPECT_DOUBLE_EQ(row.risk_window, risk_window(row.protocol, params));
    EXPECT_DOUBLE_EQ(row.success_probability,
                     success_probability(row.protocol, params, mission));
  }
}

}  // namespace
