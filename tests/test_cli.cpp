#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <array>

namespace {

using dckpt::util::CliParser;

CliParser make_parser() {
  CliParser parser("prog", "test program");
  parser.add_option("mtbf", "3600", "platform MTBF in seconds");
  parser.add_option("protocol", "triple", "protocol name");
  parser.add_flag("verbose", "chatty output");
  return parser;
}

TEST(CliParserTest, DefaultsApply) {
  auto parser = make_parser();
  const std::array argv = {"prog"};
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.get("mtbf"), "3600");
  EXPECT_DOUBLE_EQ(parser.get_double("mtbf"), 3600.0);
  EXPECT_EQ(parser.get_int("mtbf"), 3600);
  EXPECT_FALSE(parser.get_flag("verbose"));
}

TEST(CliParserTest, SpaceSeparatedValue) {
  auto parser = make_parser();
  const std::array argv = {"prog", "--mtbf", "60"};
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.get_int("mtbf"), 60);
}

TEST(CliParserTest, EqualsSeparatedValue) {
  auto parser = make_parser();
  const std::array argv = {"prog", "--protocol=doublenbl"};
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.get("protocol"), "doublenbl");
}

TEST(CliParserTest, FlagPresence) {
  auto parser = make_parser();
  const std::array argv = {"prog", "--verbose"};
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(parser.get_flag("verbose"));
}

TEST(CliParserTest, PositionalArguments) {
  auto parser = make_parser();
  const std::array argv = {"prog", "pos1", "--mtbf", "10", "pos2"};
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "pos1");
  EXPECT_EQ(parser.positional()[1], "pos2");
}

TEST(CliParserTest, UnknownOptionFails) {
  auto parser = make_parser();
  const std::array argv = {"prog", "--bogus", "1"};
  EXPECT_FALSE(parser.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(CliParserTest, MissingValueFails) {
  auto parser = make_parser();
  const std::array argv = {"prog", "--mtbf"};
  EXPECT_FALSE(parser.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(CliParserTest, FlagWithValueFails) {
  auto parser = make_parser();
  const std::array argv = {"prog", "--verbose=1"};
  EXPECT_FALSE(parser.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(CliParserTest, HelpReturnsFalse) {
  auto parser = make_parser();
  const std::array argv = {"prog", "--help"};
  EXPECT_FALSE(parser.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(CliParserTest, UndeclaredGetThrows) {
  auto parser = make_parser();
  const std::array argv = {"prog"};
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(parser.get("nope"), std::invalid_argument);
}

TEST(CliParserTest, OptionLikeValueIsRejected) {
  // `--mtbf --trials 5` used to silently bind mtbf = "--trials".
  auto parser = make_parser();
  const std::array argv = {"prog", "--mtbf", "--protocol", "5"};
  EXPECT_FALSE(parser.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(CliParserTest, OptionLikeValueAllowedViaEquals) {
  auto parser = make_parser();
  const std::array argv = {"prog", "--protocol=--weird"};
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.get("protocol"), "--weird");
}

TEST(CliParserTest, NegativeNumberValuesStillParse) {
  auto parser = make_parser();
  const std::array argv = {"prog", "--mtbf", "-5"};
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.get_int("mtbf"), -5);
}

TEST(CliParserDeathTest, InvalidDoubleReportsAndExits) {
  auto parser = make_parser();
  const std::array argv = {"prog", "--mtbf", "abc"};
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EXIT(parser.get_double("mtbf"), testing::ExitedWithCode(2),
              "prog: option --mtbf: invalid value 'abc'");
}

TEST(CliParserDeathTest, TrailingGarbageReportsAndExits) {
  auto parser = make_parser();
  const std::array argv = {"prog", "--mtbf", "12x"};
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EXIT(parser.get_double("mtbf"), testing::ExitedWithCode(2),
              "invalid value '12x'");
  EXPECT_EXIT(parser.get_int("mtbf"), testing::ExitedWithCode(2),
              "invalid value '12x'");
}

TEST(CliParserDeathTest, OutOfRangeReportsAndExits) {
  auto parser = make_parser();
  const std::array argv = {"prog", "--mtbf", "1e999"};
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EXIT(parser.get_double("mtbf"), testing::ExitedWithCode(2),
              "invalid value '1e999'");
}

TEST(CliParserDeathTest, FractionalIntReportsAndExits) {
  auto parser = make_parser();
  const std::array argv = {"prog", "--mtbf", "12.5"};
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EXIT(parser.get_int("mtbf"), testing::ExitedWithCode(2),
              "invalid value '12.5'");
}

TEST(CliParserTest, UsageListsOptions) {
  auto parser = make_parser();
  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("--mtbf"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

}  // namespace
