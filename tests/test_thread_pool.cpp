#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

using dckpt::util::parallel_for_chunked;
using dckpt::util::ThreadPool;

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFuture) {
  ThreadPool pool(1);
  auto future =
      pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(101);
  parallel_for_chunked(pool, 101, 7,
                       [&](std::size_t, std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           ++touched[i];
                         }
                       });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelForTest, ChunkBoundariesAreDeterministic) {
  ThreadPool pool(2);
  auto capture = [&pool](std::size_t n, std::size_t chunks) {
    std::vector<std::pair<std::size_t, std::size_t>> bounds(chunks);
    parallel_for_chunked(pool, n, chunks,
                         [&](std::size_t c, std::size_t b, std::size_t e) {
                           bounds[c] = {b, e};
                         });
    return bounds;
  };
  const auto a = capture(100, 8);
  const auto b = capture(100, 8);
  EXPECT_EQ(a, b);
  // Chunks partition [0, n) in order.
  std::size_t cursor = 0;
  for (const auto& [lo, hi] : a) {
    EXPECT_EQ(lo, cursor);
    EXPECT_GE(hi, lo);
    cursor = hi;
  }
  EXPECT_EQ(cursor, 100u);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_chunked(pool, 0, 4,
                       [&](std::size_t, std::size_t, std::size_t) {
                         called = true;
                       });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, MoreChunksThanItemsClamps) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for_chunked(pool, 3, 10,
                       [&](std::size_t, std::size_t b, std::size_t e) {
                         ++calls;
                         EXPECT_EQ(e - b, 1u);
                       });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ParallelForTest, RethrowsBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for_chunked(pool, 10, 2,
                           [](std::size_t c, std::size_t, std::size_t) {
                             if (c == 1) throw std::logic_error("chunk boom");
                           }),
      std::logic_error);
}

}  // namespace
