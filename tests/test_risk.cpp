#include "model/risk.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "model/scenario.hpp"

namespace {

using namespace dckpt::model;

Parameters params_with(double phi, double mtbf = 7 * 3600.0) {
  return base_scenario().params.with_overhead(phi).with_mtbf(mtbf);
}

TEST(RiskWindowTest, MatchesPaperDefinitions) {
  const auto p = params_with(1.0);  // D=0 R=4 theta=34
  EXPECT_DOUBLE_EQ(risk_window(Protocol::DoubleNbl, p), 0.0 + 4.0 + 34.0);
  EXPECT_DOUBLE_EQ(risk_window(Protocol::DoubleBof, p), 0.0 + 8.0);
  EXPECT_DOUBLE_EQ(risk_window(Protocol::DoubleBlocking, p), 8.0);
  EXPECT_DOUBLE_EQ(risk_window(Protocol::Triple, p), 4.0 + 68.0);
  EXPECT_DOUBLE_EQ(risk_window(Protocol::TripleBof, p), 12.0);
}

TEST(RiskWindowTest, ExaValues) {
  const auto p =
      exa_scenario().params.with_overhead(0.0).with_mtbf(3600.0);
  // theta = (1 + alpha) R = 660 at full overlap.
  EXPECT_DOUBLE_EQ(risk_window(Protocol::DoubleNbl, p), 60.0 + 60.0 + 660.0);
  EXPECT_DOUBLE_EQ(risk_window(Protocol::DoubleBof, p), 60.0 + 120.0);
  EXPECT_DOUBLE_EQ(risk_window(Protocol::Triple, p), 60.0 + 60.0 + 1320.0);
  EXPECT_DOUBLE_EQ(risk_window(Protocol::TripleBof, p), 60.0 + 180.0);
}

TEST(SuccessProbabilityTest, DoubleFormulaMatchesEquation11) {
  const double lambda = 1e-7, time = 1e5, risk = 100.0;
  const std::uint64_t n = 1000;
  const double per_pair = 2.0 * lambda * lambda * time * risk;
  const double expected = std::pow(1.0 - per_pair, n / 2.0);
  EXPECT_NEAR(success_probability_double(lambda, time, risk, n), expected,
              1e-12);
}

TEST(SuccessProbabilityTest, TripleFormulaMatchesEquation16) {
  const double lambda = 1e-6, time = 1e6, risk = 500.0;
  const std::uint64_t n = 999;
  const double per_triple = 6.0 * std::pow(lambda, 3) * time * risk * risk;
  const double expected = std::pow(1.0 - per_triple, n / 3.0);
  EXPECT_NEAR(success_probability_triple(lambda, time, risk, n), expected,
              1e-12);
}

TEST(SuccessProbabilityTest, BaseFormulaMatchesEquation12) {
  const double lambda = 1e-8, t_base = 1e6;
  const std::uint64_t n = 100;
  EXPECT_NEAR(success_probability_no_checkpoint(lambda, t_base, n),
              std::pow(1.0 - lambda * t_base, n), 1e-12);
}

TEST(SuccessProbabilityTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(success_probability_double(0.0, 1e9, 100.0, 10), 1.0);
  EXPECT_DOUBLE_EQ(success_probability_double(1e-9, 0.0, 100.0, 10), 1.0);
  // Hazard >= 1: certain failure at this order.
  EXPECT_DOUBLE_EQ(success_probability_double(1.0, 10.0, 10.0, 10), 0.0);
  EXPECT_THROW(success_probability_double(-1.0, 1.0, 1.0, 2),
               std::invalid_argument);
}

TEST(SuccessProbabilityTest, ProtectionBeatsNoCheckpointing) {
  // Checkpointing must beat running bare for any sizeable platform/time.
  const auto p = params_with(1.0, 600.0);  // M = 10 min
  const double day = 86400.0;
  const double bare =
      success_probability_no_checkpoint(p.lambda(), day, p.nodes);
  for (Protocol protocol : kPaperProtocols) {
    EXPECT_GT(success_probability(protocol, p, day), bare)
        << protocol_name(protocol);
  }
}

TEST(SuccessProbabilityTest, PaperOrderingAtHighFailureRate) {
  // Fig. 6/9: Triple >> BOF > NBL for small M and long exploitation.
  const auto p = params_with(1.0, 60.0);  // M = 1 min
  const double life = 10.0 * 86400.0;     // 10 days
  const double nbl = success_probability(Protocol::DoubleNbl, p, life);
  const double bof = success_probability(Protocol::DoubleBof, p, life);
  const double tri = success_probability(Protocol::Triple, p, life);
  EXPECT_GT(bof, nbl);
  EXPECT_GT(tri, bof);
}

TEST(SuccessProbabilityTest, TripleGainIsOrdersOfMagnitude) {
  // Paper: "risk mitigation by orders of magnitude" for Triple vs NBL.
  const auto p = params_with(1.0, 60.0);
  const double life = 30.0 * 86400.0;
  const double nbl_fail =
      1.0 - success_probability(Protocol::DoubleNbl, p, life);
  const double tri_fail = 1.0 - success_probability(Protocol::Triple, p, life);
  ASSERT_GT(nbl_fail, 0.0);
  ASSERT_GT(tri_fail, 0.0);
  EXPECT_GT(nbl_fail / tri_fail, 100.0);
}

TEST(SuccessProbabilityTest, MonotoneInMtbf) {
  double previous = -1.0;
  for (double mtbf : {30.0, 60.0, 300.0, 1800.0}) {
    const auto p = params_with(1.0, mtbf);
    const double s = success_probability(Protocol::DoubleNbl, p, 86400.0);
    EXPECT_GT(s, previous) << "M=" << mtbf;
    previous = s;
  }
}

TEST(SuccessProbabilityTest, MonotoneDecreasingInMissionTime) {
  const auto p = params_with(1.0, 60.0);
  double previous = 2.0;
  for (double life : {3600.0, 86400.0, 10 * 86400.0, 30 * 86400.0}) {
    const double s = success_probability(Protocol::Triple, p, life);
    EXPECT_LT(s, previous);
    previous = s;
  }
}

TEST(FatalFailureRateTest, ConsistentWithSuccessProbability) {
  // For small hazards, 1 - P_success ~ rate * T.
  const auto p = params_with(1.0, 600.0);
  const double t = 3600.0;
  for (Protocol protocol : kPaperProtocols) {
    const double rate = fatal_failure_rate(protocol, p);
    const double failure_prob = 1.0 - success_probability(protocol, p, t);
    EXPECT_NEAR(failure_prob, rate * t, 0.01 * std::max(1e-30, rate * t))
        << protocol_name(protocol);
  }
}

TEST(FatalFailureRateTest, BofReducesNblExposure) {
  const auto p = params_with(0.5, 600.0);
  EXPECT_LT(fatal_failure_rate(Protocol::DoubleBof, p),
            fatal_failure_rate(Protocol::DoubleNbl, p));
}

TEST(FatalFailureRateTest, TripleBofReducesTripleExposure) {
  const auto p = params_with(0.5, 600.0);
  EXPECT_LT(fatal_failure_rate(Protocol::TripleBof, p),
            fatal_failure_rate(Protocol::Triple, p));
}

}  // namespace
