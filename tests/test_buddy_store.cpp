#include "ckpt/buddy_store.hpp"

#include <gtest/gtest.h>

#include "ckpt/page_store.hpp"

namespace {

using dckpt::ckpt::BuddyStore;
using dckpt::ckpt::PageStore;
using dckpt::ckpt::Snapshot;

Snapshot image_of(PageStore& store, std::uint64_t owner) {
  return store.snapshot(owner);
}

TEST(BuddyStoreTest, StagePromoteLifecycle) {
  PageStore mem_a(512), mem_b(512);
  BuddyStore store(0);
  const Snapshot a = image_of(mem_a, 0);  // version 1
  const Snapshot b = image_of(mem_b, 1);  // version 1
  store.stage(a);
  store.stage(b);
  EXPECT_EQ(store.staged_count(), 2u);
  EXPECT_EQ(store.committed_count(), 0u);
  store.promote(1);
  EXPECT_EQ(store.staged_count(), 0u);
  EXPECT_EQ(store.committed_count(), 2u);
  EXPECT_EQ(store.committed_version(), 1u);
  EXPECT_TRUE(store.committed_for(0));
  EXPECT_TRUE(store.committed_for(1));
  EXPECT_FALSE(store.committed_for(9));
}

TEST(BuddyStoreTest, DiscardStagedKeepsCommitted) {
  PageStore mem(512);
  BuddyStore store(0);
  store.stage(image_of(mem, 0));  // v1
  store.promote(1);
  store.stage(image_of(mem, 0));  // v2 staged
  store.discard_staged();
  EXPECT_EQ(store.staged_count(), 0u);
  EXPECT_EQ(store.committed_count(), 1u);
  EXPECT_EQ(store.committed_version(), 1u);
}

TEST(BuddyStoreTest, PromotionReplacesCommittedSetAtomically) {
  PageStore mem(512);
  BuddyStore store(0);
  store.stage(image_of(mem, 0));  // v1
  store.promote(1);
  const auto v1 = store.committed_for(0)->version();
  store.stage(image_of(mem, 0));  // v2
  store.promote(2);
  EXPECT_EQ(store.committed_count(), 1u);
  EXPECT_GT(store.committed_for(0)->version(), v1);
}

TEST(BuddyStoreTest, RejectsMixedVersionsInStaging) {
  PageStore mem(512);
  BuddyStore store(0);
  const Snapshot v1 = image_of(mem, 0);
  const Snapshot v2 = image_of(mem, 1);  // version 2 (same store advanced)
  store.stage(v1);
  EXPECT_THROW(store.stage(v2), std::logic_error);
}

TEST(BuddyStoreTest, ReStagingSameOwnerReplaces) {
  PageStore mem_a(512), mem_b(512);
  BuddyStore store(0);
  store.stage(image_of(mem_a, 0));
  store.stage(image_of(mem_b, 0));  // same owner & version: refresh
  EXPECT_EQ(store.staged_count(), 1u);
}

TEST(BuddyStoreTest, CapacityEnforced) {
  PageStore m0(512), m1(512), m2(512);
  BuddyStore store(0, 2);
  store.stage(image_of(m0, 0));
  store.stage(image_of(m1, 1));
  EXPECT_THROW(store.stage(image_of(m2, 2)), std::logic_error);
}

TEST(BuddyStoreTest, PromoteWithoutStagingThrows) {
  BuddyStore store(0);
  EXPECT_THROW(store.promote(1), std::logic_error);
  PageStore mem(512);
  store.stage(image_of(mem, 0));  // v1
  EXPECT_THROW(store.promote(2), std::logic_error);
}

TEST(BuddyStoreTest, EmptyImageRejected) {
  BuddyStore store(0);
  EXPECT_THROW(store.stage(Snapshot()), std::invalid_argument);
  EXPECT_THROW(store.restore_committed(Snapshot()), std::invalid_argument);
}

TEST(BuddyStoreTest, RestoreCommittedBypassesStaging) {
  PageStore mem(512);
  BuddyStore store(0);
  store.restore_committed(image_of(mem, 3));
  EXPECT_EQ(store.committed_count(), 1u);
  EXPECT_TRUE(store.committed_for(3));
  EXPECT_EQ(store.committed_version(), 1u);
}

TEST(BuddyStoreTest, RestoreCommittedRespectsCapacity) {
  PageStore m0(512), m1(512), m2(512);
  BuddyStore store(0, 2);
  store.restore_committed(image_of(m0, 0));
  store.restore_committed(image_of(m1, 1));
  EXPECT_THROW(store.restore_committed(image_of(m2, 2)), std::logic_error);
  // Overwriting an existing owner is fine at capacity.
  EXPECT_NO_THROW(store.restore_committed(image_of(m0, 0)));
}

TEST(BuddyStoreTest, ResidentBytesTracksBothSets) {
  PageStore mem_a(1000), mem_b(2000);
  BuddyStore store(0);
  EXPECT_EQ(store.resident_bytes(), 0u);
  store.stage(image_of(mem_a, 0));
  EXPECT_EQ(store.resident_bytes(), 1000u);
  store.promote(1);
  store.stage(image_of(mem_b, 1));
  EXPECT_EQ(store.resident_bytes(), 3000u);
}

TEST(BuddyStoreTest, ZeroCapacityRejected) {
  EXPECT_THROW(BuddyStore(0, 0), std::invalid_argument);
}

TEST(BuddyStoreTest, DiscardAfterPartialStageLeavesNoResidue) {
  // A node that fails mid-exchange leaves a half-filled staging set; the
  // rollback's discard must drop it entirely while the committed set (and
  // its version) stay live for the restore.
  PageStore mem_a(512), mem_b(512);
  BuddyStore store(0);
  store.stage(image_of(mem_a, 0));  // v1
  store.stage(image_of(mem_b, 1));  // v1
  store.promote(1);
  store.stage(image_of(mem_a, 0));  // v2: only one of two owners staged
  EXPECT_EQ(store.staged_count(), 1u);
  store.discard_staged();
  EXPECT_EQ(store.staged_count(), 0u);
  EXPECT_EQ(store.resident_bytes(), 1024u);  // just the committed pair
  EXPECT_EQ(store.committed_version(), 1u);
  EXPECT_TRUE(store.committed_for(0));
  EXPECT_TRUE(store.committed_for(1));
  // The next full round still promotes cleanly.
  (void)mem_b.snapshot(1);          // line mem_b's version counter up (v2)
  store.stage(image_of(mem_a, 0));  // v3
  store.stage(image_of(mem_b, 1));  // v3
  store.promote(3);
  EXPECT_EQ(store.committed_count(), 2u);
}

TEST(BuddyStoreTest, FailedPromoteLeavesCommittedSetIntact) {
  // promote() of a version nothing was staged under must throw *without*
  // touching either set -- the committed images are what every recovery
  // ladder walks, so a failed promotion must be side-effect free.
  PageStore mem(512);
  BuddyStore store(0);
  store.stage(image_of(mem, 0));  // v1
  store.promote(1);
  const std::uint64_t hash = store.committed_for(0)->content_hash();
  store.stage(image_of(mem, 0));  // v2 staged
  EXPECT_THROW(store.promote(7), std::logic_error);
  EXPECT_EQ(store.committed_count(), 1u);
  EXPECT_EQ(store.committed_version(), 1u);
  EXPECT_EQ(store.committed_for(0)->content_hash(), hash);
  EXPECT_EQ(store.staged_count(), 1u);  // staging also untouched
  EXPECT_NO_THROW(store.promote(2));    // and still promotable
}

TEST(BuddyStoreTest, CorruptCommittedFlipsContentNotOccupancy) {
  PageStore mem(512);
  BuddyStore store(0);
  store.stage(image_of(mem, 0));
  store.promote(1);
  const std::uint64_t hash = store.committed_for(0)->content_hash();
  EXPECT_TRUE(store.corrupt_committed(0));
  ASSERT_TRUE(store.committed_for(0));  // slot still occupied: silent damage
  EXPECT_FALSE(store.committed_for(0)->verify(hash));
  // Nothing committed for owner 5: nothing to damage.
  EXPECT_FALSE(store.corrupt_committed(5));
}

TEST(BuddyStoreTest, TornCorruptionShortensTheImage) {
  PageStore mem(512);
  BuddyStore store(0);
  store.stage(image_of(mem, 0));
  store.promote(1);
  const std::uint64_t hash = store.committed_for(0)->content_hash();
  EXPECT_TRUE(store.corrupt_committed(0, /*torn=*/true));
  EXPECT_FALSE(store.committed_for(0)->verify(hash));
}

}  // namespace
