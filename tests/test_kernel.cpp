#include "runtime/kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace {

using dckpt::runtime::CounterKernel;
using dckpt::runtime::HeatKernel;
using dckpt::runtime::WaveKernel;

TEST(HeatKernelTest, RejectsUnstableCoefficient) {
  EXPECT_THROW(HeatKernel(0.0), std::invalid_argument);
  EXPECT_THROW(HeatKernel(0.6), std::invalid_argument);
  EXPECT_NO_THROW(HeatKernel(0.5));
}

TEST(HeatKernelTest, InitializationDependsOnGlobalOffset) {
  HeatKernel kernel;
  std::vector<double> a(8), b(8);
  kernel.initialize(0, a);
  kernel.initialize(8, b);
  EXPECT_NE(a, b);
  // Block decomposition is consistent: cells 8.. of a 16-cell block match
  // block b at offset 8.
  std::vector<double> whole(16);
  kernel.initialize(0, whole);
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(whole[8 + i], b[i]);
}

TEST(HeatKernelTest, UniformFieldIsFixedPointInteriorly) {
  HeatKernel kernel(0.25);
  std::vector<double> prev(6, 3.0), next(6);
  kernel.step(prev, next, 3.0, 3.0);  // ghosts continue the uniform field
  for (double v : next) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(HeatKernelTest, DiffusionSmoothsAPeak) {
  HeatKernel kernel(0.25);
  std::vector<double> prev(5, 0.0), next(5);
  prev[2] = 1.0;
  kernel.step(prev, next, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(next[2], 0.5);   // peak decays
  EXPECT_DOUBLE_EQ(next[1], 0.25);  // neighbours gain
  EXPECT_DOUBLE_EQ(next[3], 0.25);
  // Mass conserved away from the boundary.
  const double mass =
      std::accumulate(next.begin(), next.end(), 0.0);
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(HeatKernelTest, GhostCellsCoupleNeighbours) {
  HeatKernel kernel(0.25);
  std::vector<double> prev(3, 0.0), with_heat(3), without(3);
  kernel.step(prev, with_heat, 4.0, 0.0);
  kernel.step(prev, without, 0.0, 0.0);
  EXPECT_GT(with_heat[0], without[0]);
  EXPECT_DOUBLE_EQ(with_heat[1], without[1]);  // interior untouched in 1 step
}

TEST(HeatKernelTest, EnergyDecaysUnderDiffusion) {
  HeatKernel kernel(0.25);
  std::vector<double> state(64), next(64);
  kernel.initialize(0, state);
  auto energy = [](const std::vector<double>& u) {
    double e = 0.0;
    for (double v : u) e += v * v;
    return e;
  };
  const double e0 = energy(state);
  for (int step = 0; step < 50; ++step) {
    kernel.step(state, next, 0.0, 0.0);
    state.swap(next);
  }
  EXPECT_LT(energy(state), e0);
}

TEST(CounterKernelTest, ClosedFormAfterKSteps) {
  CounterKernel kernel;
  std::vector<double> state(4), next(4);
  kernel.initialize(10, state);
  EXPECT_DOUBLE_EQ(state[0], 10.0);
  EXPECT_DOUBLE_EQ(state[3], 13.0);
  for (int step = 0; step < 7; ++step) {
    kernel.step(state, next, -1.0, -1.0);
    state.swap(next);
  }
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(state[i], 10.0 + i + 7.0);
}

TEST(WaveKernelTest, RejectsUnstableCourantAndOddBlocks) {
  EXPECT_THROW(WaveKernel(0.0), std::invalid_argument);
  EXPECT_THROW(WaveKernel(1.5), std::invalid_argument);
  WaveKernel kernel;
  std::vector<double> odd(5), next(5);
  EXPECT_THROW(kernel.initialize(0, odd), std::invalid_argument);
  EXPECT_THROW(kernel.step(odd, next, 0.0, 0.0), std::invalid_argument);
}

TEST(WaveKernelTest, InitialStateIsNearRest) {
  // Half-step rest initialization: u(t-1) differs from u(t) only by the
  // O(c^2) Taylor correction.
  WaveKernel kernel(0.5);
  std::vector<double> state(512);
  kernel.initialize(0, state);
  for (int i = 0; i < 256; ++i) {
    EXPECT_NEAR(state[i], state[256 + i], 0.02) << i;
  }
}

TEST(WaveKernelTest, HaloIndicesPointIntoCurrentLevel) {
  WaveKernel kernel;
  EXPECT_EQ(kernel.left_halo_index(16), 0u);
  EXPECT_EQ(kernel.right_halo_index(16), 7u);
}

TEST(WaveKernelTest, StepShiftsTimeLevels) {
  WaveKernel kernel(0.5);
  std::vector<double> prev(8, 0.0), next(8, 0.0);
  prev[1] = 1.0;  // u(t) pulse, u(t-1) zero
  kernel.step(prev, next, 0.0, 0.0);
  // New previous level == old current level.
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(next[4 + i], prev[i]);
  // Leapfrog at the pulse: 2*1 - 0 + 0.25*(0 - 2 + 0) = 1.5.
  EXPECT_DOUBLE_EQ(next[1], 1.5);
  // Neighbours pick up 0.25 * pulse.
  EXPECT_DOUBLE_EQ(next[0], 0.25);
  EXPECT_DOUBLE_EQ(next[2], 0.25);
}

TEST(WaveKernelTest, UnitCourantSplitsAPulseExactly) {
  // With c = 1 the leapfrog scheme reproduces d'Alembert exactly: a delta
  // pulse released from rest splits into two half-height pulses travelling
  // one cell per step.
  WaveKernel kernel(1.0);
  const std::size_t half = 64;
  std::vector<double> state(2 * half, 0.0), next(2 * half, 0.0);
  state[32] = 1.0;
  // Half-step rest initialization (see WaveKernel::initialize).
  for (std::size_t i = 0; i < half; ++i) {
    const double left = (i == 0) ? 0.0 : state[i - 1];
    const double right = (i + 1 == half) ? 0.0 : state[i + 1];
    state[half + i] = state[i] + 0.5 * (left - 2.0 * state[i] + right);
  }
  for (int step = 0; step < 10; ++step) {
    kernel.step(state, next, 0.0, 0.0);
    state.swap(next);
  }
  EXPECT_NEAR(state[22], 0.5, 1e-9);
  EXPECT_NEAR(state[42], 0.5, 1e-9);
  EXPECT_NEAR(state[32], 0.0, 1e-9);
  double total = 0.0;
  for (std::size_t i = 0; i < half; ++i) total += state[i];
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(KernelTest, Names) {
  EXPECT_EQ(HeatKernel().name(), "heat-diffusion-1d");
  EXPECT_EQ(CounterKernel().name(), "counter");
  EXPECT_EQ(WaveKernel().name(), "wave-1d-leapfrog");
}

}  // namespace
