// Fault-injecting torture harness for the poll()-based serve front end.
//
// Each scenario boots a real sim::Server on a loopback port and attacks
// it with adversarial clients: byte-at-a-time writers, CRLF and blank-line
// noise, newline-free floods, pipelined bursts past the shed limit, slow
// and stalled readers, mid-request disconnects, drains racing in-flight
// work, and a seeded fuzz mix. Scenarios assert EXACT counter values
// where the design makes them deterministic (single-segment pipelining
// guarantees parse order) and counter/observation parity where scheduling
// may vary (concurrent bursts). Reply correctness is checked byte-for-byte
// against an oracle EvalService fed the same lines in the same order.
//
// Deterministic by construction: `--seed` only feeds the fuzz scenario's
// generator. A global watchdog aborts the whole binary (exit 124) if any
// scenario wedges -- a hang is a failure, never a stuck CI lane.
//
// Usage: serve_torture [--seed N] [--scenario NAME] [--list]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/server.hpp"
#include "sim/service.hpp"
#include "util/json.hpp"

namespace {

using namespace dckpt;

struct Failure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void expect(bool ok, const std::string& what) {
  if (!ok) throw Failure(what);
}

sim::EvalServiceOptions torture_service_options() {
  sim::EvalServiceOptions options;
  options.default_trials = 25;  // sims answer in milliseconds
  return options;
}

sim::ServerOptions torture_server_options() {
  sim::ServerOptions options;
  options.read_idle_ms = 5000;
  options.write_stall_ms = 5000;
  return options;
}

/// Server under attack, on its own thread.
class Harness {
 public:
  explicit Harness(sim::ServerOptions options = torture_server_options())
      : service_(torture_service_options()), server_(service_, options) {
    expect(server_.start(), "server start failed");
    thread_ = std::thread([this] {
      exit_code_ = server_.run();
      done_.store(true);
    });
  }

  ~Harness() {
    if (thread_.joinable()) {
      server_.request_stop();
      thread_.join();
    }
  }

  int port() const { return server_.port(); }
  bool exited() const { return done_.load(); }

  bool wait_exited(int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!exited() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return exited();
  }

  /// Joins the loop; counters are race-free to read only after this.
  const sim::ServerCounters& stop() {
    if (thread_.joinable()) {
      server_.request_stop();
      thread_.join();
    }
    expect(exit_code_ == 0, "server run() exited nonzero");
    return server_.counters();
  }

 private:
  sim::EvalService service_;
  sim::Server server_;
  std::thread thread_;
  std::atomic<bool> done_{false};
  int exit_code_ = -1;
};

/// Poll-guarded loopback client; every failure throws instead of hanging.
class Client {
 public:
  explicit Client(int port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    expect(fd_ >= 0, "client socket() failed");
    if (rcvbuf > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    expect(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)) == 0,
           "client connect() failed");
  }

  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void send_all(const std::string& data, std::size_t chunk = 0) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const std::size_t len = chunk == 0
                                  ? data.size() - sent
                                  : std::min(chunk, data.size() - sent);
      const auto wrote = ::send(fd_, data.data() + sent, len, MSG_NOSIGNAL);
      expect(wrote > 0, "client send() failed");
      sent += static_cast<std::size_t>(wrote);
    }
  }

  std::string read_line(int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      expect(left > 0, "timed out waiting for a reply line");
      pollfd pfd{fd_, POLLIN, 0};
      expect(::poll(&pfd, 1, static_cast<int>(left)) > 0,
             "timed out waiting for a reply line");
      char chunk[4096];
      const auto got = ::recv(fd_, chunk, sizeof(chunk), 0);
      expect(got > 0, "connection closed while a reply was expected");
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
  }

  util::JsonValue read_json(int timeout_ms = 5000) {
    return util::parse_json(read_line(timeout_ms));
  }

  /// True once the server closed its end within the timeout.
  bool at_eof(int timeout_ms = 5000) {
    if (!buffer_.empty()) return false;
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
    char chunk[64];
    return ::recv(fd_, chunk, sizeof(chunk), 0) <= 0;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string sim_line(int seed) {
  return "EVAL kind=sim protocol=DoubleNBL mtbf=900 nodes=8 tbase=2000 "
         "period=100 trials=25 seed=" +
         std::to_string(seed);
}

std::vector<std::string> light_request_mix() {
  std::vector<std::string> lines;
  for (int i = 0; i < 12; ++i) {
    lines.push_back("EVAL kind=period protocol=Triple mtbf=" +
                    std::to_string(1800 + i * 250));
    lines.push_back("EVAL kind=waste protocol=DoubleNBL mtbf=" +
                    std::to_string(2400 + i * 300) + " period=600");
    lines.push_back("EVAL kind=risk protocol=Triple mtbf=3600 mission-hours=" +
                    std::to_string(12 + i));
  }
  // Repeats on purpose: the oracle must agree on cached=true replays too.
  lines.push_back("EVAL kind=period protocol=Triple mtbf=1800");
  lines.push_back("EVAL kind=waste protocol=DoubleNBL mtbf=2400 period=600");
  return lines;
}

/// Byte-compares each server reply with an oracle EvalService fed the
/// identical line sequence (valid on single-connection scenarios, where
/// arrival order -- hence cache state -- is fully determined).
void check_against_oracle(Client& client,
                          const std::vector<std::string>& lines) {
  sim::EvalService oracle(torture_service_options());
  for (const auto& line : lines) {
    const std::string got = client.read_line();
    const std::string want = oracle.handle_line(line);
    expect(got == want,
           "reply drifted from oracle for '" + line + "'\n  got:  " + got +
               "\n  want: " + want);
  }
}

// ------------------------------------------------------------- scenarios

/// One segment, forty mixed closed-form requests: every reply byte-equal
/// to the oracle, in request order.
void scenario_pipeline(std::uint64_t) {
  Harness harness;
  Client client(harness.port());
  const auto lines = light_request_mix();
  std::string batch;
  for (const auto& line : lines) batch += line + "\n";
  client.send_all(batch);
  check_against_oracle(client, lines);
  client.send_all("QUIT\n");
  expect(client.read_json().at("record").as_string() == "bye", "no bye");
  const auto& counters = harness.stop();
  expect(counters.accepted == 1, "accepted != 1");
  expect(counters.shed == 0, "light requests must never shed");
  expect(counters.disconnects == 0, "QUIT must not count as a disconnect");
}

/// The same mix dripped one byte per send(): framing must reassemble
/// identically.
void scenario_byte_at_a_time(std::uint64_t) {
  Harness harness;
  Client client(harness.port());
  const auto mix = light_request_mix();
  const std::vector<std::string> lines(mix.begin(), mix.begin() + 10);
  std::string batch;
  for (const auto& line : lines) batch += line + "\n";
  client.send_all(batch, /*chunk=*/1);
  check_against_oracle(client, lines);
  client.send_all("QUIT\n", /*chunk=*/1);
  expect(client.read_json().at("record").as_string() == "bye", "no bye");
  harness.stop();
}

/// CRLF terminators and blank-line noise: the parser strips both and the
/// replies still match the oracle of the clean lines.
void scenario_crlf_blank(std::uint64_t) {
  Harness harness;
  Client client(harness.port());
  const std::vector<std::string> lines = {
      "EVAL kind=period protocol=Triple mtbf=3600",
      "EVAL kind=waste protocol=DoubleNBL mtbf=2400 period=600",
      "EVAL kind=risk protocol=Triple mtbf=3600 mission-hours=24",
  };
  std::string batch = "\r\n\n\n";
  for (const auto& line : lines) batch += line + "\r\n\r\n\n";
  client.send_all(batch);
  check_against_oracle(client, lines);
  client.send_all("QUIT\r\n");
  expect(client.read_json().at("record").as_string() == "bye", "no bye");
  harness.stop();
}

/// Six unique heavy sims in one segment against queue_depth=2: the batch
/// parses before any job runs, so EXACTLY two are admitted and EXACTLY
/// four shed with code=busy -- and replies stay in request order.
void scenario_burst_shed(std::uint64_t) {
  auto options = torture_server_options();
  options.queue_depth = 2;
  Harness harness(options);
  Client client(harness.port());
  std::string batch;
  for (int seed = 1; seed <= 6; ++seed) batch += sim_line(seed) + "\n";
  client.send_all(batch + "QUIT\n");
  for (int i = 0; i < 2; ++i) {
    const auto v = client.read_json();
    expect(v.at("record").as_string() == "eval",
           "admitted sim " + std::to_string(i) + " did not answer eval");
  }
  for (int i = 0; i < 4; ++i) {
    const auto v = client.read_json();
    expect(v.at("record").as_string() == "eval_error" &&
               v.at("code").as_string() == "busy",
           "overflow sim " + std::to_string(i) + " was not shed with busy");
  }
  expect(client.read_json().at("record").as_string() == "bye", "no bye");
  const auto& counters = harness.stop();
  expect(counters.shed == 4, "shed != 4 (got " +
                                 std::to_string(counters.shed) + ")");
}

/// Eight concurrent clients burst three unique sims each. Scheduling
/// decides how many shed, so assert the parity invariant instead: the
/// busy replies the clients observe must equal the shed counter, and
/// every request gets exactly one reply.
void scenario_concurrent_burst(std::uint64_t) {
  auto options = torture_server_options();
  options.queue_depth = 2;
  Harness harness(options);
  constexpr int kClients = 8;
  constexpr int kPerClient = 3;
  std::vector<std::unique_ptr<Client>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<Client>(harness.port()));
  }
  for (int c = 0; c < kClients; ++c) {
    std::string batch;
    for (int i = 0; i < kPerClient; ++i) {
      batch += sim_line(100 + c * kPerClient + i) + "\n";
    }
    clients[static_cast<std::size_t>(c)]->send_all(batch + "QUIT\n");
  }
  std::uint64_t evals = 0;
  std::uint64_t busy = 0;
  for (auto& client : clients) {
    for (int i = 0; i < kPerClient; ++i) {
      const auto v = client->read_json();
      if (v.at("record").as_string() == "eval") {
        ++evals;
      } else {
        expect(v.at("code").as_string() == "busy",
               "unexpected error code under concurrent burst");
        ++busy;
      }
    }
    expect(client->read_json().at("record").as_string() == "bye", "no bye");
  }
  const auto& counters = harness.stop();
  constexpr auto kRequests =
      static_cast<std::uint64_t>(kClients * kPerClient);
  expect(evals + busy == kRequests, "a request went unanswered");
  expect(busy == counters.shed,
         "busy replies (" + std::to_string(busy) +
             ") != shed counter (" + std::to_string(counters.shed) + ")");
  expect(evals >= 2, "the queue admitted fewer sims than its depth");
  expect(counters.accepted == static_cast<std::uint64_t>(kClients),
         "accepted != number of clients");
  expect(counters.peak_connections == static_cast<std::uint64_t>(kClients),
         "peak_connections wrong");
}

/// Five tagged overlong lines interleaved with valid work, plus a 64 KiB
/// newline-free flood on a second connection: exactly six overlong
/// rejections, all connections survive.
void scenario_overlong_flood(std::uint64_t) {
  auto options = torture_server_options();
  options.max_line = 256;
  Harness harness(options);
  Client client(harness.port());
  const std::string valid = "EVAL kind=period protocol=Triple mtbf=3600";
  std::string batch;
  for (int i = 0; i < 5; ++i) {
    batch += std::string(1000, 'x') + "\n" + valid + "\n";
  }
  client.send_all(batch);
  for (int i = 0; i < 5; ++i) {
    expect(client.read_json().at("code").as_string() == "overlong",
           "flood line " + std::to_string(i) + " not rejected as overlong");
    expect(client.read_json().at("record").as_string() == "eval",
           "valid line after flood line " + std::to_string(i) + " lost");
  }
  Client flooder(harness.port());
  flooder.send_all(std::string(65536, 'y'));  // no newline at all
  expect(flooder.read_json().at("code").as_string() == "overlong",
         "newline-free flood not rejected");
  flooder.send_all("\nQUIT\n");
  expect(flooder.read_json().at("record").as_string() == "bye", "no bye");
  client.send_all("QUIT\n");
  expect(client.read_json().at("record").as_string() == "bye", "no bye");
  const auto& counters = harness.stop();
  expect(counters.overlong_lines == 6,
         "overlong_lines != 6 (got " +
             std::to_string(counters.overlong_lines) + ")");
}

/// A reader that drains slowly through shrunken buffers: every one of the
/// 40 pipelined replies must arrive complete. This is the regression for
/// the short-write truncation bug in the pre-rewrite server.
void scenario_slow_reader(std::uint64_t) {
  auto options = torture_server_options();
  options.sndbuf = 4096;
  Harness harness(options);
  Client client(harness.port(), /*rcvbuf=*/2048);
  std::string batch;
  for (int i = 0; i < 40; ++i) batch += "STATS\n";
  client.send_all(batch);
  for (int i = 0; i < 40; ++i) {
    const auto v = client.read_json();
    expect(v.at("record").as_string() == "serve_stats",
           "reply " + std::to_string(i) + " truncated or lost");
    if (i % 8 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  client.send_all("QUIT\n");
  expect(client.read_json().at("record").as_string() == "bye", "no bye");
  const auto& counters = harness.stop();
  expect(counters.write_timeouts == 0, "slow reader must not be reaped");
}

/// A reader that stops draining entirely: the write-stall deadline reaps
/// it exactly once, observed through a well-behaved control connection.
void scenario_stall_reap(std::uint64_t) {
  auto options = torture_server_options();
  options.sndbuf = 4096;
  options.high_water = 8192;
  options.write_stall_ms = 100;
  Harness harness(options);
  Client wedged(harness.port(), /*rcvbuf=*/2048);
  std::string batch;
  for (int i = 0; i < 80; ++i) batch += "STATS\n";
  wedged.send_all(batch);  // and never read
  Client observer(harness.port());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  double reaped = 0.0;
  while (std::chrono::steady_clock::now() < deadline) {
    observer.send_all("STATS\n");
    reaped = observer.read_json().at("server").at("write_timeouts").as_number();
    if (reaped == 1.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  expect(reaped == 1.0, "stalled writer was not reaped");
  observer.send_all("QUIT\n");
  expect(observer.read_json().at("record").as_string() == "bye", "no bye");
  const auto& counters = harness.stop();
  expect(counters.write_timeouts == 1, "write_timeouts != 1");
  expect(counters.disconnects == 0, "a reap is a server-side close");
}

/// Three clients vanish mid-request (bytes sent, no newline, abrupt
/// close): the disconnect counter reaches exactly three.
void scenario_mid_disconnect(std::uint64_t) {
  Harness harness;
  for (int i = 0; i < 3; ++i) {
    Client rude(harness.port());
    rude.send_all("EVAL kind=per");  // an unfinished request
  }
  Client observer(harness.port());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  double seen = 0.0;
  while (std::chrono::steady_clock::now() < deadline) {
    observer.send_all("STATS\n");
    seen = observer.read_json().at("server").at("disconnects").as_number();
    if (seen == 3.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  expect(seen == 3.0, "disconnects != 3");
  observer.send_all("QUIT\n");
  expect(observer.read_json().at("record").as_string() == "bye", "no bye");
  harness.stop();
}

/// A client that connects and goes silent: the read-idle deadline closes
/// it with a best-effort typed farewell.
void scenario_read_idle(std::uint64_t) {
  auto options = torture_server_options();
  options.read_idle_ms = 60;
  Harness harness(options);
  Client client(harness.port());
  const auto farewell = client.read_json();
  expect(farewell.at("record").as_string() == "eval_error" &&
             farewell.at("code").as_string() == "timeout",
         "idle close did not send a typed timeout farewell");
  expect(client.at_eof(), "connection not closed after idle farewell");
  const auto& counters = harness.stop();
  expect(counters.read_timeouts == 1, "read_timeouts != 1");
}

/// DRAIN races an in-flight sim and a late request in one segment: the
/// sim completes (drained=1), the late request answers code=shutdown,
/// everything flushes, and run() exits on its own with code 0.
void scenario_drain(std::uint64_t) {
  Harness harness;
  Client client(harness.port());
  client.send_all(sim_line(42) + "\nDRAIN\nEVAL kind=period " +
                  "protocol=Triple mtbf=3600\n");
  expect(client.read_json().at("record").as_string() == "eval",
         "in-flight sim must complete across a drain");
  const auto ack = client.read_json();
  expect(ack.at("record").as_string() == "drain" &&
             ack.at("draining").as_bool(),
         "DRAIN not acknowledged");
  expect(client.read_json().at("code").as_string() == "shutdown",
         "post-drain request not rejected with code=shutdown");
  expect(client.at_eof(), "connection not closed after drain");
  expect(harness.wait_exited(), "run() did not exit after the drain");
  const auto& counters = harness.stop();
  expect(counters.drained == 1, "drained != 1");
}

/// --once: the server retires itself after its first connection closes.
void scenario_once(std::uint64_t) {
  auto options = torture_server_options();
  options.once = true;
  Harness harness(options);
  {
    Client client(harness.port());
    client.send_all("EVAL kind=period protocol=Triple mtbf=3600\nQUIT\n");
    expect(client.read_json().at("record").as_string() == "eval", "no eval");
    expect(client.read_json().at("record").as_string() == "bye", "no bye");
  }
  expect(harness.wait_exited(), "--once did not stop the server");
  harness.stop();
}

/// Seeded chaos: six connections each firing a random mix of valid
/// requests, garbage, oversize lines, noise bytes, and abrupt exits. The
/// invariant is liveness and protocol shape -- every completed line gets
/// exactly one JSON reply, and the server stays healthy throughout.
void scenario_fuzz(std::uint64_t seed) {
  auto options = torture_server_options();
  options.max_line = 512;
  options.queue_depth = 2;
  Harness harness(options);
  std::mt19937_64 rng(seed);
  for (int c = 0; c < 6; ++c) {
    Client client(harness.port());
    std::uniform_int_distribution<int> action(0, 5);
    int expected_replies = 0;
    std::string batch;
    bool abrupt = false;
    for (int i = 0; i < 30 && !abrupt; ++i) {
      switch (action(rng)) {
        case 0:
          batch += "EVAL kind=period protocol=Triple mtbf=" +
                   std::to_string(600 + (rng() % 6000)) + "\n";
          ++expected_replies;
          break;
        case 1:
          batch += sim_line(static_cast<int>(rng() % 8)) + "\n";
          ++expected_replies;  // eval or busy, either is one reply
          break;
        case 2:
          batch += "EVAL kind=" + std::string(1 + rng() % 8, 'z') + "\n";
          ++expected_replies;  // typed parse error
          break;
        case 3:
          batch += std::string(600 + rng() % 600, 'x') + "\n";
          ++expected_replies;  // typed overlong error
          break;
        case 4:
          batch += "\r\n\n";  // pure noise, no reply
          break;
        default:
          abrupt = (rng() % 4 == 0);  // sometimes vanish mid-session
          break;
      }
    }
    client.send_all(batch);
    for (int i = 0; i < expected_replies; ++i) {
      const auto v = client.read_json();
      const std::string record = v.at("record").as_string();
      expect(record == "eval" || record == "eval_error",
             "fuzz reply " + std::to_string(i) + " has record " + record);
    }
    if (abrupt) {
      client.close();
    } else {
      client.send_all("QUIT\n");
      expect(client.read_json().at("record").as_string() == "bye", "no bye");
    }
  }
  Client control(harness.port());
  control.send_all("HEALTH\nQUIT\n");
  expect(control.read_json().at("status").as_string() == "ok",
         "server unhealthy after fuzz");
  expect(control.read_json().at("record").as_string() == "bye", "no bye");
  harness.stop();
}

struct Scenario {
  const char* name;
  void (*run)(std::uint64_t seed);
};

constexpr Scenario kScenarios[] = {
    {"pipeline", scenario_pipeline},
    {"byte-at-a-time", scenario_byte_at_a_time},
    {"crlf-blank", scenario_crlf_blank},
    {"burst-shed", scenario_burst_shed},
    {"concurrent-burst", scenario_concurrent_burst},
    {"overlong-flood", scenario_overlong_flood},
    {"slow-reader", scenario_slow_reader},
    {"stall-reap", scenario_stall_reap},
    {"mid-disconnect", scenario_mid_disconnect},
    {"read-idle", scenario_read_idle},
    {"drain", scenario_drain},
    {"once", scenario_once},
    {"fuzz", scenario_fuzz},
};

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--scenario" && i + 1 < argc) {
      only = argv[++i];
    } else if (arg == "--list") {
      for (const auto& scenario : kScenarios) std::puts(scenario.name);
      return 0;
    } else {
      std::fprintf(stderr,
                   "usage: serve_torture [--seed N] [--scenario NAME] "
                   "[--list]\n");
      return 2;
    }
  }

  // A wedged scenario must fail loudly, not hang the suite.
  std::thread([] {
    std::this_thread::sleep_for(std::chrono::seconds(60));
    std::fputs("serve_torture: watchdog expired, aborting\n", stderr);
    ::_exit(124);
  }).detach();

  int failures = 0;
  int ran = 0;
  for (const auto& scenario : kScenarios) {
    if (!only.empty() && only != scenario.name) continue;
    ++ran;
    try {
      scenario.run(seed);
      std::printf("[ ok ] %s\n", scenario.name);
    } catch (const std::exception& error) {
      ++failures;
      std::printf("[FAIL] %s: %s\n", scenario.name, error.what());
    }
  }
  if (ran == 0) {
    std::fprintf(stderr, "no scenario named '%s'\n", only.c_str());
    return 2;
  }
  std::printf("%d/%d scenarios passed (seed %llu)\n", ran - failures, ran,
              static_cast<unsigned long long>(seed));
  return failures == 0 ? 0 : 1;
}
