#include "net/network.hpp"

#include <gtest/gtest.h>

namespace {

using namespace dckpt::net;

TEST(FlatNetworkTest, Validation) {
  EXPECT_THROW(FlatNetwork(1, 100.0), std::invalid_argument);
  EXPECT_THROW(FlatNetwork(4, 0.0), std::invalid_argument);
  FlatNetwork network(4, 100.0);
  EXPECT_THROW(network.fair_rates({{0, 0, kUncapped}}),
               std::invalid_argument);
  EXPECT_THROW(network.fair_rates({{0, 9, kUncapped}}),
               std::invalid_argument);
  EXPECT_THROW(network.fair_rates({{0, 1, 0.0}}), std::invalid_argument);
}

TEST(FairRatesTest, SingleFlowGetsFullBandwidth) {
  FlatNetwork network(4, 100.0);
  const auto rates = network.fair_rates({{0, 1, kUncapped}});
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 100.0);
}

TEST(FairRatesTest, TwoFlowsSameEgressSplitEvenly) {
  FlatNetwork network(4, 100.0);
  const auto rates =
      network.fair_rates({{0, 1, kUncapped}, {0, 2, kUncapped}});
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
}

TEST(FairRatesTest, DisjointFlowsDoNotInterfere) {
  FlatNetwork network(4, 100.0);
  const auto rates =
      network.fair_rates({{0, 1, kUncapped}, {2, 3, kUncapped}});
  EXPECT_DOUBLE_EQ(rates[0], 100.0);
  EXPECT_DOUBLE_EQ(rates[1], 100.0);
}

TEST(FairRatesTest, CapLimitedFlowReleasesBandwidth) {
  FlatNetwork network(4, 100.0);
  const auto rates =
      network.fair_rates({{0, 1, kUncapped}, {0, 2, 20.0}});
  EXPECT_DOUBLE_EQ(rates[1], 20.0);
  EXPECT_DOUBLE_EQ(rates[0], 80.0);
}

TEST(FairRatesTest, CapAboveFairShareIsInert) {
  FlatNetwork network(4, 100.0);
  const auto rates =
      network.fair_rates({{0, 1, kUncapped}, {0, 2, 90.0}});
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
}

TEST(FairRatesTest, IngressContentionCounts) {
  // Two sources into one destination: the ingress port is the bottleneck.
  FlatNetwork network(4, 100.0);
  const auto rates =
      network.fair_rates({{0, 2, kUncapped}, {1, 2, kUncapped}});
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
}

TEST(FairRatesTest, ClassicMaxMinExample) {
  // Flows: A 0->1, B 0->2, C 3->2. Egress 0 shared by A,B; ingress 2 shared
  // by B,C. Max-min: A = B = 50 (egress 0 bottleneck), then C fills
  // ingress 2: C = 50.
  FlatNetwork network(4, 100.0);
  const auto rates = network.fair_rates(
      {{0, 1, kUncapped}, {0, 2, kUncapped}, {3, 2, kUncapped}});
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
  EXPECT_DOUBLE_EQ(rates[2], 50.0);
}

TEST(FairRatesTest, UnbalancedBottleneckFreesCapacity) {
  // Three flows out of node 0 (share 33.3), one of them capped at 10:
  // the other two rise to 45 each.
  FlatNetwork network(4, 100.0);
  const auto rates = network.fair_rates(
      {{0, 1, kUncapped}, {0, 2, kUncapped}, {0, 3, 10.0}});
  EXPECT_DOUBLE_EQ(rates[2], 10.0);
  EXPECT_DOUBLE_EQ(rates[0], 45.0);
  EXPECT_DOUBLE_EQ(rates[1], 45.0);
}

TEST(FairRatesTest, ConservationAndBounds) {
  FlatNetwork network(6, 100.0);
  const std::vector<Flow> flows = {{0, 1, kUncapped}, {0, 2, 30.0},
                                   {3, 1, kUncapped}, {4, 5, 70.0},
                                   {3, 5, kUncapped}};
  const auto rates = network.fair_rates(flows);
  std::vector<double> egress(6, 0.0), ingress(6, 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_GT(rates[f], 0.0);
    EXPECT_LE(rates[f], flows[f].rate_cap);
    egress[flows[f].src] += rates[f];
    ingress[flows[f].dst] += rates[f];
  }
  for (int p = 0; p < 6; ++p) {
    EXPECT_LE(egress[p], 100.0 + 1e-9);
    EXPECT_LE(ingress[p], 100.0 + 1e-9);
  }
}

TEST(FairRatesTest, EmptyFlowSet) {
  FlatNetwork network(4, 100.0);
  EXPECT_TRUE(network.fair_rates({}).empty());
}

}  // namespace
