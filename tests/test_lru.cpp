#include "util/lru.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace {

using dckpt::util::LruCache;

TEST(LruCache, RejectsZeroCapacity) {
  EXPECT_THROW((LruCache<int, int>(0)), std::invalid_argument);
}

TEST(LruCache, MissThenHit) {
  LruCache<std::string, int> cache(4);
  EXPECT_EQ(cache.get("a"), nullptr);
  cache.put("a", 1);
  auto* hit = cache.get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  ASSERT_NE(cache.get(1), nullptr);  // 1 is now most recent
  cache.put(3, 30);                  // evicts 2
  EXPECT_EQ(cache.get(2), nullptr);
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, GetRefreshesRecency) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  ASSERT_NE(cache.get(1), nullptr);
  cache.put(3, 30);  // 2 was least recent after the get(1) touch
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_EQ(cache.get(2), nullptr);
}

TEST(LruCache, OverwriteKeepsSingleEntry) {
  LruCache<int, std::string> cache(2);
  cache.put(1, "a");
  cache.put(1, "b");
  EXPECT_EQ(cache.size(), 1u);
  auto* v = cache.get(1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, "b");
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(LruCache, OverwriteRefreshesRecency) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(1, 11);  // overwrite marks 1 most recent
  cache.put(3, 30);  // evicts 2
  EXPECT_EQ(cache.get(2), nullptr);
  auto* v = cache.get(1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 11);
}

TEST(LruCache, HitRateZeroWhenUntouched) {
  LruCache<int, int> cache(1);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
}

TEST(LruCache, CapacityOneChurns) {
  LruCache<int, int> cache(1);
  for (int i = 0; i < 10; ++i) cache.put(i, i);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 9u);
  auto* v = cache.get(9);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 9);
}

}  // namespace
