// Runtime demo: a real parallel stencil computation protected by real buddy
// checkpointing. Kills workers mid-run and shows the application surviving
// with a bit-identical final state.
//
//   ./runtime_demo --topology triples --nodes 9 --steps 200 --kill 57:2,130:5
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/runtime_api.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

namespace {

std::vector<dckpt::runtime::FailureInjection> parse_kills(
    const std::string& spec) {
  std::vector<dckpt::runtime::FailureInjection> kills;
  if (spec.empty()) return kills;
  std::istringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const auto colon = item.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("--kill expects step:node[,step:node...]");
    }
    kills.push_back({std::stoull(item.substr(0, colon)),
                     std::stoull(item.substr(colon + 1))});
  }
  return kills;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dckpt;

  util::CliParser cli("runtime_demo",
                      "fault-tolerant stencil run with worker kills");
  cli.add_option("topology", "pairs", "pairs | triples");
  cli.add_option("nodes", "8", "worker count (multiple of the group size)");
  cli.add_option("cells", "4096", "cells per worker");
  cli.add_option("steps", "200", "total iterations");
  cli.add_option("interval", "25", "checkpoint every k steps");
  cli.add_option("kill", "57:2,130:5",
                 "failure injections, step:node comma-separated; '' = none");
  if (!cli.parse(argc, argv)) return 0;

  runtime::RuntimeConfig config;
  config.topology = cli.get("topology") == "triples"
                        ? ckpt::Topology::Triples
                        : ckpt::Topology::Pairs;
  config.nodes = static_cast<std::uint64_t>(cli.get_int("nodes"));
  config.cells_per_node = static_cast<std::size_t>(cli.get_int("cells"));
  config.total_steps = static_cast<std::uint64_t>(cli.get_int("steps"));
  config.checkpoint_interval =
      static_cast<std::uint64_t>(cli.get_int("interval"));
  const auto kills = parse_kills(cli.get("kill"));

  // Reference: the failure-free execution.
  runtime::Coordinator reference(config,
                                 std::make_unique<runtime::HeatKernel>());
  const auto expected = reference.run();

  runtime::Coordinator coordinator(config,
                                   std::make_unique<runtime::HeatKernel>());
  std::printf("running %llu workers (%s), %llu steps, checkpoint every %llu, "
              "%zu injected failure(s)\n",
              static_cast<unsigned long long>(config.nodes),
              cli.get("topology").c_str(),
              static_cast<unsigned long long>(config.total_steps),
              static_cast<unsigned long long>(config.checkpoint_interval),
              kills.size());
  const auto report = coordinator.run(kills);

  if (report.fatal) {
    std::printf("FATAL: %s\n", report.fatal_reason.c_str());
    return 1;
  }
  std::printf("\nsurvived: %llu failures, %llu rollbacks, %llu steps "
              "replayed\n",
              static_cast<unsigned long long>(report.failures),
              static_cast<unsigned long long>(report.rollbacks),
              static_cast<unsigned long long>(report.replayed_steps));
  std::printf("checkpoints: %llu, %s replicated to buddies, %llu COW pages\n",
              static_cast<unsigned long long>(report.checkpoints),
              util::format_bytes(
                  static_cast<double>(report.bytes_replicated)).c_str(),
              static_cast<unsigned long long>(report.cow_copies));
  std::printf("final state hash: %016llx (reference %016llx) -- %s\n",
              static_cast<unsigned long long>(report.final_hash),
              static_cast<unsigned long long>(expected.final_hash),
              report.final_hash == expected.final_hash
                  ? "BIT-IDENTICAL, failures fully masked"
                  : "MISMATCH (bug!)");
  return report.final_hash == expected.final_hash ? 0 : 1;
}
