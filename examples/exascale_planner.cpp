// Exascale capacity planning (the paper's Exa scenario): how does each
// protocol's overhead evolve as the machine grows from petascale to
// exascale, and where does in-memory checkpointing stop being viable?
//
// Sweeps the node count (hence the platform MTBF) at fixed per-node
// hardware, printing waste at the optimal period and the success
// probability of a week-long campaign.
#include <cstdio>

#include "model/model_api.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dckpt;

  util::CliParser cli("exascale_planner",
                      "protocol overhead scaling toward exascale");
  cli.add_option("mtbf-node-years", "20", "MTBF of one node, in years");
  cli.add_option("phi-ratio", "0.1", "overhead fraction phi/R");
  cli.add_option("campaign-days", "7", "campaign length, days");
  if (!cli.parse(argc, argv)) return 0;

  const double node_years = cli.get_double("mtbf-node-years");
  const double phi_ratio = cli.get_double("phi-ratio");
  const double campaign = cli.get_double("campaign-days") * 86400.0;

  // Exa per-node hardware (Table I): delta = 30 s, R = 60 s, alpha = 10.
  auto base = model::exa_scenario().params;
  base.overhead = phi_ratio * base.remote_blocking;

  std::printf("Per-node hardware: delta=%ss R=%ss alpha=%.0f phi/R=%.2f, "
              "node MTBF %.0f years\n\n",
              util::format_fixed(base.local_ckpt, 0).c_str(),
              util::format_fixed(base.remote_blocking, 0).c_str(),
              base.alpha, phi_ratio, node_years);

  util::TextTable table({"Nodes", "Platform MTBF", "Protocol", "P*", "Waste",
                         "P(success, campaign)"});
  for (std::uint64_t nodes :
       {10000ULL, 50000ULL, 100000ULL, 500000ULL, 1000000ULL}) {
    auto params = base;
    params.nodes = nodes - nodes % 6;  // divisible by 2 and 3
    params.mtbf =
        node_years * 365.25 * 86400.0 / static_cast<double>(params.nodes);
    for (auto protocol : model::kPaperProtocols) {
      const auto opt = model::optimal_period_closed_form(protocol, params);
      table.add_row(
          {std::to_string(params.nodes),
           util::format_duration(params.mtbf),
           std::string(model::protocol_name(protocol)),
           util::format_duration(opt.period),
           opt.feasible ? util::format_percent(opt.waste, 1) : "stalled",
           util::format_fixed(
               model::success_probability(protocol, params, campaign), 4)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: once the platform MTBF approaches the recovery+transfer\n"
      "time, waste explodes -- the paper's motivation for combining\n"
      "in-memory buddy checkpointing with hierarchical protocols.\n");
  return 0;
}
