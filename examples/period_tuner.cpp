// Period tuner: shows the full waste-vs-period curve for a protocol on a
// given platform, marking the closed-form optimum (Eq. 9/10/15), the
// numeric optimum, and the sensitivity around them -- useful to judge how
// much a mis-tuned period actually costs.
//
//   ./period_tuner --protocol doublenbl --mtbf 25200 --phi-ratio 0.25
#include <cstdio>
#include <stdexcept>
#include <string>

#include "model/model_api.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

namespace {

}  // namespace

int main(int argc, char** argv) {
  using namespace dckpt;

  util::CliParser cli("period_tuner",
                      "waste as a function of the checkpoint period");
  cli.add_option("protocol", "doublenbl", "protocol to tune");
  cli.add_option("scenario", "base", "base | exa hardware");
  cli.add_option("mtbf", "25200", "platform MTBF, seconds (default 7 h)");
  cli.add_option("phi-ratio", "0.25", "overhead fraction phi/R");
  cli.add_option("points", "15", "curve resolution");
  if (!cli.parse(argc, argv)) return 0;

  const auto protocol = dckpt::model::parse_protocol_name(cli.get("protocol"));
  auto scenario = cli.get("scenario") == "exa" ? model::exa_scenario()
                                               : model::base_scenario();
  const auto params = scenario.at_phi_ratio(cli.get_double("phi-ratio"))
                          .with_mtbf(cli.get_double("mtbf"));

  const auto closed = model::optimal_period_closed_form(protocol, params);
  const auto numeric = model::optimal_period_numeric(protocol, params);

  std::printf("%s on %s\n", std::string(model::protocol_name(protocol)).c_str(),
              params.describe().c_str());
  std::printf("closed-form P* = %s (waste %s)%s\n",
              util::format_duration(closed.period).c_str(),
              util::format_percent(closed.waste, 3).c_str(),
              closed.clamped ? " [clamped to min period]" : "");
  std::printf("numeric     P* = %s (waste %s)\n\n",
              util::format_duration(numeric.period).c_str(),
              util::format_percent(numeric.waste, 3).c_str());

  const double lo = model::min_period(protocol, params);
  const double hi = closed.period * 6.0;
  util::TextTable table({"Period", "WASTE_ff", "WASTE_fail", "Total",
                         "vs optimum"});
  const int points = static_cast<int>(cli.get_int("points"));
  for (double period : util::log_space(lo, hi, points)) {
    const double ff = model::waste_fault_free(protocol, params, period);
    const double fail = model::waste_failure(protocol, params, period);
    const double total = model::waste(protocol, params, period);
    table.add_row({util::format_duration(period),
                   util::format_percent(ff, 2),
                   util::format_percent(fail, 2),
                   util::format_percent(total, 2),
                   std::string("+") + util::format_percent(total - numeric.waste, 2)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
