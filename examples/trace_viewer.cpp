// Trace viewer: runs one simulated execution with full event tracing and
// prints the protocol's life -- periods, checkpoint commits, failures,
// rollbacks, recoveries -- the fastest way to understand what the state
// machine actually does.
//
//   ./trace_viewer --protocol triple --mtbf 400 --tbase 1200
#include <cstdio>
#include <string>

#include "model/model_api.hpp"
#include "sim/sim_api.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

namespace {

}  // namespace

int main(int argc, char** argv) {
  using namespace dckpt;

  util::CliParser cli("trace_viewer",
                      "single-run event trace of a buddy protocol");
  cli.add_option("protocol", "doublenbl", "protocol to trace");
  cli.add_option("nodes", "12", "platform nodes (multiple of 6)");
  cli.add_option("mtbf", "400", "platform MTBF, seconds");
  cli.add_option("phi-ratio", "0.25", "overhead fraction phi/R");
  cli.add_option("tbase", "1200", "application work, seconds");
  cli.add_option("seed", "7", "random seed");
  if (!cli.parse(argc, argv)) return 0;

  sim::SimConfig config;
  config.protocol = dckpt::model::parse_protocol_name(cli.get("protocol"));
  config.params = model::base_scenario().params;
  config.params.nodes = static_cast<std::uint64_t>(cli.get_int("nodes"));
  config.params.mtbf = cli.get_double("mtbf");
  config.params.overhead =
      cli.get_double("phi-ratio") * config.params.remote_blocking;
  config.t_base = cli.get_double("tbase");
  config.stop_on_fatal = false;
  config.period =
      model::optimal_period_closed_form(config.protocol, config.params).period;

  std::printf("%s, P = %s, t_base = %s\n\n",
              std::string(model::protocol_name(config.protocol)).c_str(),
              util::format_duration(config.period).c_str(),
              util::format_duration(config.t_base).c_str());

  sim::Trace trace(true);
  const auto result = sim::simulate_exponential(
      config, static_cast<std::uint64_t>(cli.get_int("seed")), &trace);
  std::printf("%s", trace.render().c_str());

  std::printf("\nmakespan %s, waste %s, %llu failure(s)%s\n",
              util::format_duration(result.makespan).c_str(),
              util::format_percent(result.waste(), 2).c_str(),
              static_cast<unsigned long long>(result.failures),
              result.fatal ? ", FATAL" : "");
  std::printf("loss breakdown: checkpointing %s, downtime %s, recovery %s, "
              "re-execution %s\n",
              util::format_duration(result.time_checkpointing).c_str(),
              util::format_duration(result.time_down).c_str(),
              util::format_duration(result.time_recovering).c_str(),
              util::format_duration(result.time_reexecuting).c_str());
  return 0;
}
