// 2-D grid demo: a 2-D heat-diffusion field decomposed over a worker grid,
// protected by buddy checkpointing, surviving injected worker kills with a
// bit-identical result.
//
//   ./grid_demo --rows 3 --cols 3 --topology triples --kill 21:4
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "runtime/runtime_api.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"

namespace {

std::vector<dckpt::runtime::FailureInjection> parse_kills(
    const std::string& spec) {
  std::vector<dckpt::runtime::FailureInjection> kills;
  if (spec.empty()) return kills;
  std::istringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const auto colon = item.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("--kill expects step:node[,step:node...]");
    }
    kills.push_back({std::stoull(item.substr(0, colon)),
                     std::stoull(item.substr(colon + 1))});
  }
  return kills;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dckpt;

  util::CliParser cli("grid_demo", "2-D fault-tolerant stencil run");
  cli.add_option("rows", "2", "worker grid rows");
  cli.add_option("cols", "2", "worker grid columns");
  cli.add_option("topology", "pairs", "pairs | triples");
  cli.add_option("block", "32", "block edge length (cells)");
  cli.add_option("steps", "120", "total iterations");
  cli.add_option("interval", "20", "checkpoint every k steps");
  cli.add_option("kill", "45:1", "failure injections, step:node list");
  if (!cli.parse(argc, argv)) return 0;

  runtime::GridConfig config;
  config.grid_rows = static_cast<std::size_t>(cli.get_int("rows"));
  config.grid_cols = static_cast<std::size_t>(cli.get_int("cols"));
  config.topology = cli.get("topology") == "triples"
                        ? ckpt::Topology::Triples
                        : ckpt::Topology::Pairs;
  config.block_rows = static_cast<std::size_t>(cli.get_int("block"));
  config.block_cols = config.block_rows;
  config.total_steps = static_cast<std::uint64_t>(cli.get_int("steps"));
  config.checkpoint_interval =
      static_cast<std::uint64_t>(cli.get_int("interval"));
  const auto kills = parse_kills(cli.get("kill"));

  runtime::GridCoordinator reference(config,
                                     std::make_unique<runtime::HeatKernel2D>());
  const auto expected = reference.run();

  runtime::GridCoordinator coordinator(
      config, std::make_unique<runtime::HeatKernel2D>());
  std::printf("%zux%zu worker grid (%s), %zux%zu cells each, %llu steps\n",
              config.grid_rows, config.grid_cols, cli.get("topology").c_str(),
              config.block_rows, config.block_cols,
              static_cast<unsigned long long>(config.total_steps));
  const auto report = coordinator.run(kills);
  if (report.fatal) {
    std::printf("FATAL: %s\n", report.fatal_reason.c_str());
    return 1;
  }
  std::printf("failures %llu, rollbacks %llu, replayed %llu steps, "
              "%s replicated\n",
              static_cast<unsigned long long>(report.failures),
              static_cast<unsigned long long>(report.rollbacks),
              static_cast<unsigned long long>(report.replayed_steps),
              util::format_bytes(
                  static_cast<double>(report.bytes_replicated)).c_str());
  std::printf("final hash %016llx vs reference %016llx -- %s\n",
              static_cast<unsigned long long>(report.final_hash),
              static_cast<unsigned long long>(expected.final_hash),
              report.final_hash == expected.final_hash ? "IDENTICAL"
                                                       : "MISMATCH");
  return report.final_hash == expected.final_hash ? 0 : 1;
}
