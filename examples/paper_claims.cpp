// Self-checking reproduction: evaluates every headline quantitative claim
// of "Revisiting the double checkpointing algorithm" against this
// implementation and prints PASS/FAIL. Exit code 0 iff all claims hold.
//
// This is the one-command answer to "does the repository actually
// reproduce the paper?".
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "model/model_api.hpp"
#include "sim/sim_api.hpp"
#include "util/format.hpp"

namespace {

using namespace dckpt;
using model::Protocol;

struct Claim {
  std::string text;
  std::function<bool(std::string&)> check;
};

int run_claims(const std::vector<Claim>& claims) {
  int failed = 0;
  for (const auto& claim : claims) {
    std::string detail;
    bool ok = false;
    try {
      ok = claim.check(detail);
    } catch (const std::exception& error) {
      detail = std::string("exception: ") + error.what();
    }
    std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", claim.text.c_str());
    if (!detail.empty()) std::printf("       %s\n", detail.c_str());
    if (!ok) ++failed;
  }
  return failed;
}

}  // namespace

int main() {
  const auto base = model::base_scenario();
  const auto exa = model::exa_scenario();
  const double m7h = 7.0 * 3600.0;

  std::vector<Claim> claims;

  claims.push_back(
      {"Sec. II: theta(phi) spans [R, (1+alpha)R] -- theta_max = 11R at "
       "alpha = 10",
       [&](std::string& detail) {
         const auto overlap = base.params.overlap();
         detail = "theta_max = " +
                  util::format_fixed(overlap.theta_max(), 1) + " s";
         return overlap.theta_max() == 11.0 * base.params.remote_blocking;
       }});

  claims.push_back(
      {"Eq. 7/14: F_nbl = F_tri = D + R + theta + P/2",
       [&](std::string& detail) {
         const auto p = base.at_phi_ratio(0.5).with_mtbf(m7h);
         const double period = 300.0;
         const double f_nbl =
             model::expected_failure_cost(Protocol::DoubleNbl, p, period);
         const double f_tri =
             model::expected_failure_cost(Protocol::Triple, p, period);
         const double formula = p.downtime + p.recovery() + p.theta() +
                                period / 2.0;
         detail = "F = " + util::format_fixed(f_nbl, 3);
         return std::abs(f_nbl - formula) < 1e-9 &&
                std::abs(f_tri - formula) < 1e-9;
       }});

  claims.push_back(
      {"Eq. 8: F_bof - F_nbl = R - phi",
       [&](std::string& detail) {
         const auto p = base.at_phi_ratio(0.25).with_mtbf(m7h);
         const double diff =
             model::expected_failure_cost(Protocol::DoubleBof, p, 300.0) -
             model::expected_failure_cost(Protocol::DoubleNbl, p, 300.0);
         detail = "difference = " + util::format_fixed(diff, 3) + " s";
         return std::abs(diff - (p.remote_blocking - p.overhead)) < 1e-9;
       }});

  claims.push_back(
      {"Sec. VI-A: at M = 15 s no protocol makes progress (waste = 1)",
       [&](std::string& detail) {
         for (auto protocol : model::kPaperProtocols) {
           const auto p = base.at_phi_ratio(0.5).with_mtbf(15.0);
           if (model::optimal_period_closed_form(protocol, p).feasible) {
             detail = std::string(model::protocol_name(protocol)) +
                      " still feasible";
             return false;
           }
         }
         return true;
       }});

  claims.push_back(
      {"Fig. 5: DoubleBoF waste >= DoubleNBL everywhere, excess < 2%",
       [&](std::string& detail) {
         double worst = 0.0;
         for (int i = 0; i <= 20; ++i) {
           const auto p = base.at_phi_ratio(i / 20.0).with_mtbf(m7h);
           const double ratio = model::waste_ratio(Protocol::DoubleBof,
                                                   Protocol::DoubleNbl, p);
           if (ratio < 1.0 - 1e-9) return false;
           worst = std::max(worst, ratio - 1.0);
         }
         detail = "max excess = " + util::format_percent(worst, 2);
         return worst < 0.02;
       }});

  claims.push_back(
      {"Fig. 5: Triple beats DoubleNBL for phi/R < 0.5, crossover at 0.5, "
       "worst case <= ~15%",
       [&](std::string& detail) {
         const auto at = [&](double ratio) {
           return model::waste_ratio(Protocol::Triple, Protocol::DoubleNbl,
                                     base.at_phi_ratio(ratio).with_mtbf(m7h));
         };
         detail = "ratio(0.1) = " + util::format_fixed(at(0.1), 3) +
                  ", ratio(0.5) = " + util::format_fixed(at(0.5), 4) +
                  ", ratio(1.0) = " + util::format_fixed(at(1.0), 3);
         return at(0.1) < 0.75 && std::abs(at(0.5) - 1.0) < 0.02 &&
                at(1.0) < 1.16;
       }});

  claims.push_back(
      {"Fig. 8: on Exa, Triple's gain reaches ~25% of DoubleNBL at "
       "phi/R = 1/10",
       [&](std::string& detail) {
         const double ratio = model::waste_ratio(
             Protocol::Triple, Protocol::DoubleNbl,
             exa.at_phi_ratio(0.1).with_mtbf(m7h));
         detail = "Triple/NBL = " + util::format_fixed(ratio, 3);
         return ratio < 0.80 && ratio > 0.70;
       }});

  claims.push_back(
      {"Sec. III-C/V-C: risk windows -- NBL D+R+theta, BoF D+2R, "
       "Triple D+R+2theta, TripleBoF D+3R",
       [&](std::string& detail) {
         const auto p = exa.at_phi_ratio(0.0).with_mtbf(m7h);
         const double d = p.downtime, r = p.recovery(), th = p.theta();
         detail = "theta = " + util::format_duration(th);
         return model::risk_window(Protocol::DoubleNbl, p) == d + r + th &&
                model::risk_window(Protocol::DoubleBof, p) == d + 2 * r &&
                model::risk_window(Protocol::Triple, p) == d + r + 2 * th &&
                model::risk_window(Protocol::TripleBof, p) == d + 3 * r;
       }});

  claims.push_back(
      {"Fig. 6: Triple's risk mitigation is orders of magnitude at small M "
       "and long exploitation",
       [&](std::string& detail) {
         const auto p = base.at_phi_ratio(0.0).with_mtbf(60.0);
         const double life = 30.0 * 86400.0;
         const double nbl_fail =
             1.0 - model::success_probability(Protocol::DoubleNbl, p, life);
         const double tri_fail =
             1.0 - model::success_probability(Protocol::Triple, p, life);
         detail = "failure odds NBL/Triple = " +
                  util::format_scientific(nbl_fail / tri_fail, 3);
         return nbl_fail / tri_fail > 100.0;
       }});

  claims.push_back(
      {"Sec. III-B: buddy optimal periods follow sqrt(2(delta+phi)(M-...)) "
       "(closed form == numeric optimum)",
       [&](std::string& detail) {
         for (auto protocol : model::kPaperProtocols) {
           const auto p = base.at_phi_ratio(0.25).with_mtbf(m7h);
           const auto closed =
               model::optimal_period_closed_form(protocol, p);
           const auto numeric = model::optimal_period_numeric(protocol, p);
           if (closed.waste > numeric.waste * 1.02 + 1e-9) {
             detail = std::string(model::protocol_name(protocol)) +
                      " closed form suboptimal";
             return false;
           }
         }
         return true;
       }});

  claims.push_back(
      {"Simulation cross-check: DES waste within 10% of the model "
       "(DoubleNBL & Triple, M = 1 h)",
       [&](std::string& detail) {
         for (auto protocol : {Protocol::DoubleNbl, Protocol::Triple}) {
           auto p = base.at_phi_ratio(0.25).with_mtbf(3600.0);
           p.nodes = 12;
           const auto opt = model::optimal_period_closed_form(protocol, p);
           sim::SimConfig config;
           config.protocol = protocol;
           config.params = p;
           config.period = opt.period;
           config.t_base = 25.0 * p.mtbf;
           config.stop_on_fatal = false;
           sim::MonteCarloOptions options;
           options.trials = 80;
           options.threads = 2;
           const auto mc = sim::run_monte_carlo(config, options);
           const double rel =
               std::abs(mc.waste.mean() - opt.waste) / opt.waste;
           detail += std::string(model::protocol_name(protocol)) + " " +
                     util::format_percent(rel, 1) + "  ";
           if (rel > 0.10) return false;
         }
         return true;
       }});

  claims.push_back(
      {"Abstract: Triple achieves both higher efficiency and better risk "
       "handling than double checkpointing (phi/R = 0.25, Base, M = 7 h)",
       [&](std::string& detail) {
         const auto p = base.at_phi_ratio(0.25).with_mtbf(m7h);
         const double tri_waste =
             model::waste_at_optimal_period(Protocol::Triple, p);
         const double nbl_waste =
             model::waste_at_optimal_period(Protocol::DoubleNbl, p);
         const double tri_rate =
             model::fatal_failure_rate(Protocol::Triple, p);
         const double nbl_rate =
             model::fatal_failure_rate(Protocol::DoubleNbl, p);
         detail = "waste " + util::format_percent(tri_waste, 2) + " vs " +
                  util::format_percent(nbl_waste, 2) + ", fatal rate " +
                  util::format_scientific(tri_rate, 2) + " vs " +
                  util::format_scientific(nbl_rate, 2);
         return tri_waste < nbl_waste && tri_rate < nbl_rate;
       }});

  std::printf("=== paper claims check ===\n\n");
  const int failed = run_claims(claims);
  std::printf("\n%zu claims, %d failed\n", claims.size(), failed);
  return failed == 0 ? 0 : 1;
}
