// Risk explorer: simulate a platform under a chosen protocol and compare
// the measured survival rate against the analytic success probability
// (Eq. 11/16), printing the full Monte-Carlo picture -- waste distribution,
// failures endured, fatal-failure rate.
//
//   ./risk_explorer --protocol triple --nodes 24 --mtbf 120 --tbase 3600
#include <cstdio>
#include <string>

#include "model/model_api.hpp"
#include "sim/runner.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/histogram.hpp"
#include "util/table.hpp"

namespace {

}  // namespace

int main(int argc, char** argv) {
  using namespace dckpt;

  util::CliParser cli("risk_explorer",
                      "Monte-Carlo survival analysis of a buddy protocol");
  cli.add_option("protocol", "doublenbl", "protocol to simulate");
  cli.add_option("nodes", "24", "platform nodes (multiple of 6)");
  cli.add_option("mtbf", "120", "platform MTBF, seconds");
  cli.add_option("phi-ratio", "0.25", "overhead fraction phi/R");
  cli.add_option("tbase", "3600", "application work, seconds");
  cli.add_option("trials", "1000", "Monte-Carlo trials");
  cli.add_option("seed", "42", "master seed");
  if (!cli.parse(argc, argv)) return 0;

  sim::SimConfig config;
  config.protocol = dckpt::model::parse_protocol_name(cli.get("protocol"));
  config.params = model::base_scenario().params;
  config.params.nodes = static_cast<std::uint64_t>(cli.get_int("nodes"));
  config.params.mtbf = cli.get_double("mtbf");
  config.params.overhead =
      cli.get_double("phi-ratio") * config.params.remote_blocking;
  config.t_base = cli.get_double("tbase");
  config.stop_on_fatal = true;
  config.max_makespan = 1e8;
  const auto opt =
      model::optimal_period_closed_form(config.protocol, config.params);
  config.period = opt.period;

  sim::MonteCarloOptions options;
  options.trials = static_cast<std::uint64_t>(cli.get_int("trials"));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("Simulating %s on %s\n",
              std::string(model::protocol_name(config.protocol)).c_str(),
              config.params.describe().c_str());
  std::printf("period P* = %s (model waste %s)\n\n",
              util::format_duration(config.period).c_str(),
              util::format_percent(opt.waste, 2).c_str());

  const auto mc = sim::run_monte_carlo(config, options);

  util::TextTable table({"metric", "value"});
  table.add_row({"trials", std::to_string(mc.success.trials())});
  table.add_row({"survived", std::to_string(mc.success.successes())});
  const auto ci = mc.success.wilson_interval();
  table.add_row({"survival rate",
                 util::format_fixed(mc.success.estimate(), 4) + "  [" +
                     util::format_fixed(ci.lo, 4) + ", " +
                     util::format_fixed(ci.hi, 4) + "]"});
  table.add_row(
      {"model P(success)",
       util::format_fixed(model::success_probability(
                              config.protocol, config.params,
                              mc.makespan.count() ? mc.makespan.mean() : 0.0),
                          4)});
  table.add_row({"mean waste (survivors)",
                 util::format_percent(mc.waste.mean(), 2) + " +/- " +
                     util::format_percent(mc.waste.confidence_halfwidth(), 2)});
  table.add_row({"mean failures/run",
                 util::format_fixed(mc.failures.mean(), 2)});
  table.add_row({"risk window",
                 util::format_duration(model::risk_window(config.protocol,
                                                          config.params))});
  std::printf("%s\n", table.render().c_str());

  // Makespan distribution of surviving runs.
  if (mc.makespan.count() > 1) {
    util::Histogram histogram(mc.makespan.min() * 0.999,
                              mc.makespan.max() * 1.001, 12);
    // Cheap re-simulation pass to fill the histogram (same seeds).
    for (std::uint64_t trial = 0; trial < options.trials; ++trial) {
      const auto result = sim::simulate_exponential(
          config, options.seed ^ (0x9e3779b97f4a7c15ULL * (trial + 1)));
      if (!result.fatal && !result.diverged) histogram.add(result.makespan);
    }
    std::printf("Makespan distribution (survivors):\n%s",
                histogram.render(40).c_str());
  }
  return 0;
}
