// Hierarchical planner: configure a two-level deployment (buddy in-memory
// checkpointing + periodic global checkpoints to stable storage) for a
// machine, and see how rarely the parallel file system actually gets hit.
//
//   ./hierarchical_planner --mtbf 600 --global-ckpt 900 --phi-ratio 0.25
#include <cmath>
#include <cstdio>

#include "model/model_api.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dckpt;

  util::CliParser cli("hierarchical_planner",
                      "two-level buddy + stable-storage deployment planner");
  cli.add_option("scenario", "base", "base | exa level-1 hardware");
  cli.add_option("mtbf", "600", "platform MTBF, seconds");
  cli.add_option("phi-ratio", "0.25", "overhead fraction phi/R");
  cli.add_option("global-ckpt", "900",
                 "global checkpoint cost to stable storage, seconds");
  cli.add_option("global-recovery", "900",
                 "global recovery cost from stable storage, seconds");
  if (!cli.parse(argc, argv)) return 0;

  const auto scenario = cli.get("scenario") == "exa" ? model::exa_scenario()
                                                     : model::base_scenario();
  model::HierarchicalParams params;
  params.level1 = scenario.at_phi_ratio(cli.get_double("phi-ratio"))
                      .with_mtbf(cli.get_double("mtbf"));
  params.global_ckpt = cli.get_double("global-ckpt");
  params.global_recovery = cli.get_double("global-recovery");

  std::printf("Level 1 platform: %s\n", params.level1.describe().c_str());
  std::printf("Level 2 stable storage: C = %s, R_g = %s\n\n",
              util::format_duration(params.global_ckpt).c_str(),
              util::format_duration(params.global_recovery).c_str());

  util::TextTable table({"Level-1 protocol", "MTBF_fatal", "P1*", "P2*",
                         "ckpts/day to PFS", "w1", "w total"});
  for (auto protocol : model::kAllProtocols) {
    params.protocol = protocol;
    const auto eval = model::optimize_hierarchical(params);
    const double per_day = std::isfinite(eval.level2_period)
                               ? 86400.0 / eval.level2_period
                               : 0.0;
    table.add_row(
        {std::string(model::protocol_name(protocol)),
         util::format_duration(
             model::mean_time_between_fatal(protocol, params.level1)),
         util::format_duration(eval.level1_period),
         std::isfinite(eval.level2_period)
             ? util::format_duration(eval.level2_period)
             : "never",
         util::format_fixed(per_day, 2),
         util::format_percent(eval.level1_waste, 2),
         eval.feasible ? util::format_percent(eval.total_waste, 2)
                       : "stalled"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: a triple level 1 pushes the stable-storage checkpoint\n"
      "cadence from hours to weeks -- the I/O relief that makes the hybrid\n"
      "viable at exascale (paper Sec. VIII, future work).\n");
  return 0;
}
