// Quickstart: describe your platform, get the recommended protocol, the
// optimal checkpoint period and the expected overhead.
//
//   ./quickstart --nodes 4096 --mtbf-node-years 10 --image-mb 512
//                --net-mbps 1000 --local-mbps 2000 --phi-ratio 0.25
#include <cstdio>

#include "model/model_api.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dckpt;

  util::CliParser cli("quickstart",
                      "pick a buddy-checkpointing protocol for your machine");
  cli.add_option("nodes", "4096", "number of compute nodes");
  cli.add_option("mtbf-node-years", "10", "MTBF of one node, in years");
  cli.add_option("image-mb", "512", "checkpoint image per node, in MiB");
  cli.add_option("net-mbps", "1000", "node-to-node bandwidth, MiB/s");
  cli.add_option("local-mbps", "2000", "local storage bandwidth, MiB/s");
  cli.add_option("alpha", "10", "overlap speedup factor");
  cli.add_option("phi-ratio", "0.25",
                 "accepted overhead during transfers, as a fraction of R");
  cli.add_option("downtime", "60", "node replacement downtime, seconds");
  cli.add_option("mission-hours", "24", "mission length for the risk column");
  if (!cli.parse(argc, argv)) return 0;

  model::HardwareSpec spec;
  spec.nodes = static_cast<std::uint64_t>(cli.get_int("nodes"));
  spec.node_mtbf_years = cli.get_double("mtbf-node-years");
  spec.checkpoint_bytes = cli.get_double("image-mb") * 1024 * 1024;
  spec.network_bandwidth = cli.get_double("net-mbps") * 1024 * 1024;
  spec.local_bandwidth = cli.get_double("local-mbps") * 1024 * 1024;
  spec.alpha = cli.get_double("alpha");
  spec.downtime = cli.get_double("downtime");

  auto params = spec.derive();
  params.overhead = cli.get_double("phi-ratio") * params.remote_blocking;
  params.validate();
  const double mission = cli.get_double("mission-hours") * 3600.0;

  std::printf("Platform: %s\n", params.describe().c_str());
  std::printf("  platform MTBF M = %s, theta(phi) = %s\n\n",
              util::format_duration(params.mtbf).c_str(),
              util::format_duration(params.theta()).c_str());

  const std::vector<model::Protocol> protocols(model::kAllProtocols.begin(),
                                               model::kAllProtocols.end());
  util::TextTable table({"Protocol", "Optimal period", "Waste", "Efficiency",
                         "Risk window", "P(success)"});
  for (const auto& row :
       model::evaluate_protocols(protocols, params, mission)) {
    table.add_row({std::string(model::protocol_name(row.protocol)),
                   util::format_duration(row.optimum.period),
                   util::format_percent(row.optimum.waste, 2),
                   util::format_percent(1.0 - row.optimum.waste, 2),
                   util::format_duration(row.risk_window),
                   util::format_fixed(row.success_probability, 6)});
  }
  std::printf("%s\n", table.render().c_str());

  const auto best_waste = model::best_protocol_by_waste(protocols, params);
  const auto best_risk =
      model::best_protocol_by_risk(protocols, params, mission);
  std::printf("Lowest waste:   %s\n",
              std::string(model::protocol_name(best_waste)).c_str());
  std::printf("Safest:         %s\n",
              std::string(model::protocol_name(best_risk)).c_str());
  return 0;
}
