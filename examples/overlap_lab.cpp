// Overlap lab: measure the overlap factor alpha for *your* application's
// communication profile, instead of assuming the paper's alpha = 10.
//
// Describe the app by its per-step compute time and halo bytes; the lab
// runs the NIC-contention experiment across pacing targets, fits the
// paper's linear law, and shows what the measured alpha means for each
// protocol's optimal waste.
//
//   ./overlap_lab --compute 0.05 --halo-mb 16 --nic-mbps 128 --image-mb 512
#include <cmath>
#include <cstdio>

#include "model/model_api.hpp"
#include "net/net_api.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dckpt;

  util::CliParser cli("overlap_lab",
                      "measure your application's overlap factor alpha");
  cli.add_option("compute", "0.02", "compute time per step, seconds");
  cli.add_option("halo-mb", "16", "halo bytes exchanged per step, MiB");
  cli.add_option("nic-mbps", "128", "NIC bandwidth, MiB/s");
  cli.add_option("image-mb", "512", "checkpoint image size, MiB");
  cli.add_option("mtbf", "25200", "platform MTBF for the waste column, s");
  cli.add_option("delta", "2", "local checkpoint time, s (double protocols)");
  if (!cli.parse(argc, argv)) return 0;

  net::OverlapWorkload workload;
  workload.compute_time = cli.get_double("compute");
  workload.halo_bytes = cli.get_double("halo-mb") * 1024 * 1024;
  workload.nic_bandwidth = cli.get_double("nic-mbps") * 1024 * 1024;
  workload.checkpoint_bytes = cli.get_double("image-mb") * 1024 * 1024;
  workload.validate();

  const double mech_alpha = workload.mechanistic_alpha();
  std::printf("workload: step = %s (%.0f%% of the NIC busy), "
              "theta_min = %s\n",
              util::format_duration(workload.step_time()).c_str(),
              100.0 * workload.app_demand() / workload.nic_bandwidth,
              util::format_duration(workload.theta_min()).c_str());

  const auto curve = net::measure_overlap_curve(
      workload, net::SharingPolicy::Scavenger, 12,
      std::isfinite(mech_alpha) ? 1.3 * (1.0 + mech_alpha) : 50.0);
  util::TextTable measured({"theta", "phi", "phi/theta_min"});
  for (const auto& point : curve) {
    measured.add_row({util::format_duration(point.theta),
                      util::format_duration(point.phi),
                      util::format_fixed(point.phi / workload.theta_min(),
                                         3)});
  }
  std::printf("\nmeasured phi(theta), scavenger scheduling:\n%s\n",
              measured.render().c_str());

  const double alpha = net::fit_alpha(curve, workload.theta_min());
  std::printf("fitted alpha = %.2f (mechanistic A/(B-A) = %s)\n\n", alpha,
              std::isfinite(mech_alpha)
                  ? util::format_fixed(mech_alpha, 2).c_str()
                  : "inf");

  // Downstream: protocol waste with the measured alpha.
  model::Parameters params;
  params.downtime = 0.0;
  params.local_ckpt = cli.get_double("delta");
  params.remote_blocking = workload.theta_min();
  params.alpha = alpha;
  params.overhead = 0.0;
  params.nodes = 10368;
  params.mtbf = cli.get_double("mtbf");
  params.validate();

  util::TextTable waste_table({"Protocol", "best phi/R", "P*", "Waste"});
  for (auto protocol : model::kPaperProtocols) {
    const auto joint = model::optimal_overhead_and_period(protocol, params);
    waste_table.add_row(
        {std::string(model::protocol_name(protocol)),
         util::format_fixed(joint.overhead / params.remote_blocking, 2),
         util::format_duration(joint.optimum.period),
         util::format_percent(joint.optimum.waste, 2)});
  }
  std::printf("protocol waste with your measured alpha (phi tuned):\n%s",
              waste_table.render().c_str());
  return 0;
}
