#!/usr/bin/env bash
# Fixed-seed chaos smoke: drives the `dckpt chaos` campaign engine through
# the scripted schedule families plus a batch of seed-randomized runs on both
# topologies and both runtimes (1-D chain and 2-D grid), and fails if any
# run is classified `violated` (the CLI exits non-zero in that case).
# Budgeted to finish in well under 30 seconds -- this is the "did the runtime
# survival story regress" tripwire, not the full randomized campaign (that
# lives in test_chaos.cpp / test_chaos_grid.cpp under `ctest -L slow`).
#
# Every campaign runs even after an earlier one fails: `set -e` would stop
# at the first violation and mask regressions on the remaining topologies,
# so the loop aggregates exit codes explicitly and reports every campaign
# that violated (the CLI already prints the repro line for each violation).
#
# Usage:
#   scripts/run_chaos_smoke.sh           # uses ./build
#   BUILD_DIR=build-sanitize scripts/run_chaos_smoke.sh
#   DCKPT_BIN=/path/to/dckpt scripts/run_chaos_smoke.sh   # explicit binary
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"
DCKPT="${DCKPT_BIN:-${BUILD_DIR}/src/tools/dckpt}"

if [[ ! -x "${DCKPT}" ]]; then
  echo "run_chaos_smoke: ${DCKPT} not found -- build first" >&2
  exit 1
fi

# name | dckpt chaos arguments (one campaign per line).
CAMPAIGNS=(
  "chain pairs, scripted + 40 random|--topology=pairs --nodes=8 --cells=48 --steps=96 --interval=12 --staging=4 --rerepl-delay=8 --runs=40 --seed=20260805"
  "chain triples, scripted + 40 random|--topology=triples --nodes=9 --cells=48 --steps=96 --interval=12 --staging=4 --rerepl-delay=8 --runs=40 --seed=20260805"
  "grid 4x4 pairs, scripted + 40 random|--topology=pairs --grid=4x4 --block=6 --steps=64 --interval=8 --rerepl-delay=6 --runs=40 --seed=20260805"
  "grid 3x3 triples, scripted + 40 random|--topology=triples --grid=3x3 --block=6 --steps=64 --interval=8 --rerepl-delay=6 --runs=40 --seed=20260805"
  "spare-pool delay from the Erlang model|--topology=pairs --nodes=8 --steps=96 --interval=12 --spares=4 --repair=1800 --mtbf=900 --step-seconds=5 --runs=20 --seed=7"
  "single-schedule repro (risk-window double hit)|--topology=pairs --nodes=6 --steps=48 --interval=8 --rerepl-delay=6 --schedule=9:0,10:1"
  "grid single-schedule repro (rack double hit)|--topology=pairs --grid=2x2 --block=8 --steps=48 --interval=8 --rerepl-delay=6 --schedule=9:0,10:1"
  # Corruption campaigns: tight retry policy so torn/failed refills and the
  # exhausted-retries path are all exercised within the run length.
  "chain pairs corruption, scripted + 40 random|--topology=pairs --nodes=8 --cells=48 --steps=96 --interval=12 --staging=4 --rerepl-delay=8 --retry-max=2 --retry-base=2 --runs=40 --seed=42424242"
  "chain triples corruption, scripted + 40 random|--topology=triples --nodes=9 --cells=48 --steps=96 --interval=12 --staging=4 --rerepl-delay=8 --retry-max=2 --retry-base=2 --runs=40 --seed=42424242"
  "grid 4x4 pairs corruption, scripted + 40 random|--topology=pairs --grid=4x4 --block=6 --steps=64 --interval=8 --rerepl-delay=6 --retry-max=2 --retry-base=2 --runs=40 --seed=42424242"
  "grid 3x3 triples corruption, scripted + 40 random|--topology=triples --grid=3x3 --block=6 --steps=64 --interval=8 --rerepl-delay=6 --retry-max=2 --retry-base=2 --runs=40 --seed=42424242"
  # The two acceptance scenarios from docs/CHAOS.md as exact repro lines:
  # triples fail over around the corrupt preferred replica (survived),
  # pairs detect total loss and complete degraded (fatal-detected).
  "triples corrupt-preferred failover repro|--topology=triples --nodes=9 --cells=48 --steps=96 --interval=12 --staging=4 --rerepl-delay=8 --retry-max=3 --retry-base=1 --schedule=28:corrupt:1:0,29:0"
  "pairs only-replica-corrupt degraded repro|--topology=pairs --nodes=8 --cells=48 --steps=96 --interval=12 --staging=4 --rerepl-delay=8 --retry-max=3 --retry-base=1 --schedule=28:corrupt:1:0,29:0"
  "torn-refill retry repro|--topology=pairs --nodes=6 --steps=48 --interval=8 --rerepl-delay=6 --retry-max=3 --retry-base=1 --schedule=9:torn:0,9:0"
  "grid corrupt-preferred repro|--topology=triples --grid=3x3 --block=6 --steps=64 --interval=8 --rerepl-delay=6 --retry-max=3 --retry-base=1 --schedule=15:corrupt:4:3,15:3"
  # Silent-error campaigns (verification enabled adds the sdc-* scripted
  # families and an sdc motif to the random draws): both topologies, both
  # runtimes, plus the two acceptance scenarios from docs/CHAOS.md as exact
  # repro lines -- keep-last-3 survives the latent strike via a depth-2
  # rollback, keep-last-2 accepts a *detected* fatal (never a violation).
  "chain pairs sdc, scripted + 40 random|--topology=pairs --nodes=8 --cells=48 --steps=96 --interval=12 --staging=4 --rerepl-delay=8 --verify-every=4 --keep-last=3 --runs=40 --seed=20260809"
  "chain triples sdc, scripted + 40 random|--topology=triples --nodes=9 --cells=48 --steps=96 --interval=12 --staging=4 --rerepl-delay=8 --verify-every=4 --keep-last=3 --runs=40 --seed=20260809"
  "grid 4x4 pairs sdc, scripted + 40 random|--topology=pairs --grid=4x4 --block=6 --steps=64 --interval=8 --rerepl-delay=6 --verify-every=4 --keep-last=3 --runs=40 --seed=20260809"
  "grid 3x3 triples sdc, scripted + 40 random|--topology=triples --grid=3x3 --block=6 --steps=64 --interval=8 --rerepl-delay=6 --verify-every=4 --keep-last=3 --runs=40 --seed=20260809"
  "sdc survivable rollback repro|--topology=pairs --nodes=8 --cells=48 --steps=96 --interval=12 --verify-every=4 --keep-last=3 --schedule=13:sdc:0"
  "sdc fatal-detected shallow-retention repro|--topology=pairs --nodes=8 --cells=48 --steps=96 --interval=12 --verify-every=4 --keep-last=2 --schedule=13:sdc:0"
  "grid sdc survivable rollback repro|--topology=pairs --grid=4x4 --block=6 --steps=96 --interval=12 --verify-every=4 --keep-last=3 --schedule=13:sdc:0"
  # Fault-prediction campaigns: the scripted set now includes the alarm
  # families (predicted kill, same-step alarm, false-alarm storm during a
  # risk window, missed prediction at a commit boundary); the exact repro
  # lines pin the proactive-commit path on both runtimes.
  "chain pairs alarms, scripted + 40 random|--topology=pairs --nodes=8 --cells=48 --steps=96 --interval=12 --staging=4 --rerepl-delay=8 --runs=40 --seed=20260811"
  "alarm proactive-commit repro|--topology=pairs --nodes=8 --cells=48 --steps=96 --interval=12 --rerepl-delay=8 --schedule=26:alarm:0:2,27:0"
  "grid alarm proactive-commit repro|--topology=pairs --grid=2x2 --block=8 --steps=48 --interval=8 --rerepl-delay=6 --schedule=17:alarm:1:3,19:1"
  # Differential-checkpoint campaigns (--dcp-stack enables the delta cadence,
  # the dcp-* scripted families and a torndelta motif in the random draws):
  # both topologies, both runtimes, plus the acceptance scenario from
  # docs/DCP.md as an exact repro line -- a layer torn in transfer fails
  # over to the buddy's intact chain (survived, one torn-chain failover).
  "chain pairs dcp, scripted + 40 random|--topology=pairs --nodes=8 --cells=48 --steps=96 --interval=12 --rerepl-delay=8 --dcp-stack=3 --runs=40 --seed=20260812"
  "chain triples dcp, scripted + 40 random|--topology=triples --nodes=9 --cells=48 --steps=96 --interval=12 --rerepl-delay=8 --dcp-stack=3 --runs=40 --seed=20260812"
  "grid 4x4 pairs dcp, scripted + 40 random|--topology=pairs --grid=4x4 --block=6 --steps=64 --interval=8 --rerepl-delay=6 --dcp-stack=3 --runs=40 --seed=20260812"
  "grid 3x3 triples dcp, scripted + 40 random|--topology=triples --grid=3x3 --block=6 --steps=64 --interval=8 --rerepl-delay=6 --dcp-stack=3 --runs=40 --seed=20260812"
  "torn-chain failover repro|--topology=triples --nodes=9 --cells=48 --steps=96 --interval=12 --rerepl-delay=8 --dcp-stack=3 --schedule=25:torndelta:0:1,25:0"
)

status=0
failed=()
for entry in "${CAMPAIGNS[@]}"; do
  name="${entry%%|*}"
  args="${entry#*|}"
  echo "== chaos smoke: ${name} =="
  # shellcheck disable=SC2086  # args are intentionally word-split
  if ! "${DCKPT}" chaos ${args}; then
    status=1
    failed+=("${name}")
    echo "run_chaos_smoke: VIOLATED in campaign '${name}' (repro above)" >&2
  fi
done

if [[ ${status} -ne 0 ]]; then
  echo "run_chaos_smoke: ${#failed[@]} campaign(s) violated:" >&2
  for name in "${failed[@]}"; do
    echo "  - ${name}" >&2
  done
  exit "${status}"
fi
echo "run_chaos_smoke: all ${#CAMPAIGNS[@]} campaigns clean (zero violated)"
