#!/usr/bin/env bash
# Fixed-seed chaos smoke: drives the `dckpt chaos` campaign engine through
# the scripted schedule families plus a batch of seed-randomized runs on both
# topologies, and fails if any run is classified `violated` (the CLI exits
# non-zero in that case). Budgeted to finish in well under 30 seconds -- this
# is the "did the runtime survival story regress" tripwire, not the full
# randomized campaign (that lives in test_chaos.cpp under `ctest -L slow`).
#
# Usage:
#   scripts/run_chaos_smoke.sh           # uses ./build
#   BUILD_DIR=build-sanitize scripts/run_chaos_smoke.sh
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"
DCKPT="${BUILD_DIR}/src/tools/dckpt"

if [[ ! -x "${DCKPT}" ]]; then
  echo "run_chaos_smoke: ${DCKPT} not found -- build first" >&2
  exit 1
fi

echo "== chaos smoke: pairs, scripted + 40 random runs =="
"${DCKPT}" chaos --topology=pairs --nodes=8 --cells=48 --steps=96 \
  --interval=12 --staging=4 --rerepl-delay=8 --runs=40 --seed=20260805

echo "== chaos smoke: triples, scripted + 40 random runs =="
"${DCKPT}" chaos --topology=triples --nodes=9 --cells=48 --steps=96 \
  --interval=12 --staging=4 --rerepl-delay=8 --runs=40 --seed=20260805

echo "== chaos smoke: spare-pool delay derived from the Erlang model =="
"${DCKPT}" chaos --topology=pairs --nodes=8 --steps=96 --interval=12 \
  --spares=4 --repair=1800 --mtbf=900 --step-seconds=5 \
  --runs=20 --seed=7

echo "== chaos smoke: single-schedule repro (risk-window double hit) =="
# A buddy loss inside the re-replication window is fatal-but-detected, so
# this run exits 0 with outcome fatal-detected; a `violated` would exit 1.
"${DCKPT}" chaos --topology=pairs --nodes=6 --steps=48 --interval=8 \
  --rerepl-delay=6 --schedule=9:0,10:1

echo "run_chaos_smoke: all campaigns clean (zero violated)"
