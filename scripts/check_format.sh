#!/usr/bin/env bash
# Format/lint gate over the C++ tree (src/, tests/, bench/). Two layers:
#
#   1. Portable lint rules that need no tooling: no tab characters, no
#      trailing whitespace, no CRLF line endings, every file ends with a
#      newline. These always run and fail the gate on the first offender.
#   2. clang-format --dry-run --Werror against the repo's .clang-format.
#      Runs when a clang-format binary is available (CI installs one); a
#      box without the tool skips this layer with a notice instead of
#      failing, so the lint layer still guards local pre-push runs.
#
# Usage:
#   scripts/check_format.sh                 # gate the tree
#   CLANG_FORMAT=clang-format-18 scripts/check_format.sh
set -uo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

mapfile -t FILES < <(find src tests bench \( -name '*.cpp' -o -name '*.hpp' \) | sort)
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "check_format: no C++ sources found under src/ tests/ bench/" >&2
  exit 1
fi

status=0

# --- layer 1: portable lint rules -----------------------------------------
if offenders=$(grep -rlP '\t' "${FILES[@]}"); then
  echo "check_format: tab characters in:" >&2
  echo "${offenders}" >&2
  status=1
fi
if offenders=$(grep -rlP '[ \t]+$' "${FILES[@]}"); then
  echo "check_format: trailing whitespace in:" >&2
  echo "${offenders}" >&2
  status=1
fi
if offenders=$(grep -rlP '\r' "${FILES[@]}"); then
  echo "check_format: CRLF line endings in:" >&2
  echo "${offenders}" >&2
  status=1
fi
for f in "${FILES[@]}"; do
  if [[ -s "$f" && -n "$(tail -c 1 "$f")" ]]; then
    echo "check_format: missing final newline in ${f}" >&2
    status=1
  fi
done

# --- layer 2: clang-format against .clang-format --------------------------
CLANG_FORMAT="${CLANG_FORMAT:-}"
if [[ -z "${CLANG_FORMAT}" ]]; then
  for candidate in clang-format clang-format-19 clang-format-18 \
                   clang-format-17 clang-format-16 clang-format-15 \
                   clang-format-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      CLANG_FORMAT="${candidate}"
      break
    fi
  done
fi
if [[ -n "${CLANG_FORMAT}" ]]; then
  echo "check_format: ${CLANG_FORMAT} $(${CLANG_FORMAT} --version | tr -d '\n')"
  if ! "${CLANG_FORMAT}" --style=file --dry-run --Werror "${FILES[@]}"; then
    echo "check_format: clang-format violations (fix with" \
         "'${CLANG_FORMAT} --style=file -i <file>')" >&2
    status=1
  fi
else
  echo "check_format: clang-format not found -- skipping layer 2 (CI runs it)"
fi

if [[ ${status} -ne 0 ]]; then
  echo "check_format: FAILED" >&2
  exit "${status}"
fi
echo "check_format: ${#FILES[@]} files clean"
