#!/usr/bin/env python3
"""Guards the batched Monte-Carlo engine against performance regressions.

Compares a freshly measured engine-comparison record (written by
`bench_micro_engine --engine-json=PATH`) against the committed baseline
`BENCH_engine.json`. Absolute trials/sec numbers are machine-dependent, so
the gate is the scalar-vs-batched *speedup* measured on the same machine in
the same run: it cancels out host speed and only moves when the batched
kernel itself gets slower (or the scalar oracle gets faster, which is also
worth knowing about).

Exit 1 when the fresh speedup drops below --min-ratio (default 0.8, i.e. a
>20% regression) of the baseline speedup.

Usage:
  scripts/check_bench_regression.py FRESH.json [--baseline BENCH_engine.json]
      [--min-ratio 0.8]
"""

import argparse
import json
import pathlib
import sys


def load_record(path):
    with open(path, encoding="utf-8") as handle:
        record = json.load(handle)
    if record.get("record") != "bench_engine":
        raise ValueError(f"{path}: not a bench_engine record")
    for key in ("scalar_trials_per_sec", "batched_trials_per_sec", "speedup"):
        if not isinstance(record.get(key), (int, float)) or record[key] <= 0:
            raise ValueError(f"{path}: missing or non-positive '{key}'")
    return record


def main():
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(
        description="fail on batched-engine speedup regressions")
    parser.add_argument("fresh", help="freshly measured bench_engine JSON")
    parser.add_argument("--baseline",
                        default=str(repo_root / "BENCH_engine.json"),
                        help="committed baseline record")
    parser.add_argument("--min-ratio", type=float, default=0.8,
                        help="minimum fresh/baseline speedup ratio")
    args = parser.parse_args()

    fresh = load_record(args.fresh)
    baseline = load_record(args.baseline)
    ratio = fresh["speedup"] / baseline["speedup"]

    print(f"baseline speedup: {baseline['speedup']:.2f}x "
          f"({baseline['batched_trials_per_sec']:.0f} vs "
          f"{baseline['scalar_trials_per_sec']:.0f} trials/s)")
    print(f"fresh speedup:    {fresh['speedup']:.2f}x "
          f"({fresh['batched_trials_per_sec']:.0f} vs "
          f"{fresh['scalar_trials_per_sec']:.0f} trials/s)")
    print(f"ratio: {ratio:.3f} (gate: >= {args.min_ratio})")

    if ratio < args.min_ratio:
        print(f"FAIL: batched-engine speedup regressed by "
              f"{(1.0 - ratio) * 100.0:.1f}% against the committed baseline",
              file=sys.stderr)
        return 1
    print("OK: batched-engine speedup within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
