#!/usr/bin/env bash
# Torture-tests the `dckpt serve` TCP front end.
#
# Two layers:
#   1. tests/serve_torture -- in-process sim::Server attacked by seeded
#      adversarial clients (framing splits, overload bursts, slow/stalled
#      readers, mid-request disconnects, drain races, fuzz). Scenarios
#      assert exact counter values; a built-in watchdog turns any hang
#      into exit 124.
#   2. Real-binary smokes -- spawn the actual `dckpt serve` process on an
#      auto-picked port, drive it over bash's /dev/tcp (no external client
#      dependency), and check both shutdown paths: SIGTERM must drain
#      gracefully (exit 0, final serve_stats flushed with the server
#      counter block) and --once must retire after its first connection.
#
# Usage:
#   scripts/run_serve_torture.sh              # build + both layers
#   SEEDS="1 2 7" scripts/run_serve_torture.sh
#
# Env overrides: BUILD_DIR (default build), JOBS (default nproc),
# SEEDS (default "1 2").
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"
JOBS="${JOBS:-$(nproc)}"
SEEDS="${SEEDS:-1 2}"

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target serve_torture dckpt

TORTURE="${BUILD_DIR}/tests/serve_torture"
DCKPT="${BUILD_DIR}/src/tools/dckpt"
WORK_DIR="$(mktemp -d)"
trap 'rm -rf "${WORK_DIR}"' EXIT

# ---- layer 1: the in-process adversarial scenario suite, per seed ------
for seed in ${SEEDS}; do
  echo "== serve_torture --seed ${seed} =="
  "${TORTURE}" --seed "${seed}"
done

# ---- layer 2: real-binary smokes over /dev/tcp -------------------------

# Starts `dckpt serve` with the given extra flags, waits for the banner,
# and leaves the port in ${PORT} and the pid in ${SERVE_PID}.
start_server() {
  : > "${WORK_DIR}/serve.out"
  "${DCKPT}" serve --port 0 "$@" > "${WORK_DIR}/serve.out" &
  SERVE_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/^serving on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "${WORK_DIR}/serve.out")"
    [[ -n "${PORT}" ]] && return 0
    sleep 0.05
  done
  echo "serve did not print its banner" >&2
  kill "${SERVE_PID}" 2>/dev/null || true
  return 1
}

echo "== real-binary smoke: SIGTERM drains gracefully =="
start_server --stats-out "${WORK_DIR}/stats.jsonl" --queue-depth 2
exec 3<>"/dev/tcp/127.0.0.1/${PORT}"
printf 'HEALTH\nEVAL kind=period protocol=Triple mtbf=3600\nSTATS\n' >&3
IFS= read -r health <&3
IFS= read -r reply <&3
IFS= read -r stats <&3
exec 3<&- 3>&-
grep -q '"record":"health"' <<<"${health}"
grep -q '"record":"eval"' <<<"${reply}"
grep -q '"server":{' <<<"${stats}"
kill -TERM "${SERVE_PID}"
wait "${SERVE_PID}" || { echo "SIGTERM drain exited nonzero" >&2; exit 1; }
# The final flush owes us a serve_stats record carrying the transport
# counters (the connection above closed without QUIT: one disconnect).
grep -q '"record":"serve_stats"' "${WORK_DIR}/stats.jsonl"
grep -q '"disconnects":1' "${WORK_DIR}/stats.jsonl"

echo "== real-binary smoke: --once retires after one connection =="
start_server --once --stats-out "${WORK_DIR}/stats_once.jsonl"
exec 3<>"/dev/tcp/127.0.0.1/${PORT}"
printf 'EVAL kind=waste protocol=DoubleNBL mtbf=7200 period=600\nQUIT\n' >&3
IFS= read -r reply <&3
IFS= read -r bye <&3
exec 3<&- 3>&-
grep -q '"record":"eval"' <<<"${reply}"
grep -q '"record":"bye"' <<<"${bye}"
wait "${SERVE_PID}" || { echo "--once exited nonzero" >&2; exit 1; }
grep -q '"record":"serve_stats"' "${WORK_DIR}/stats_once.jsonl"

echo "run_serve_torture: all seeds and smokes passed"
