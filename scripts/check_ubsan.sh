#!/usr/bin/env bash
# Builds the library + tier-1 tests under ASan+UBSan and runs ctest.
#
# This is the harness that would have caught the Histogram::add NaN bug
# (float->size_t cast of NaN is undefined behaviour): UBSan flags the cast
# the first time a test feeds a non-finite sample through a histogram.
#
# Usage:
#   scripts/check_ubsan.sh             # build + run all tests sanitized
#   scripts/check_ubsan.sh -R histo    # forward extra args to ctest
#
# Env overrides: BUILD_DIR (default build-sanitize), JOBS (default nproc).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build-sanitize}"
JOBS="${JOBS:-$(nproc)}"

# Benches are skipped: google-benchmark links fine but adds minutes of build
# for no extra sanitizer coverage beyond what the tests exercise.
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDCKPT_SANITIZE=address,undefined \
  -DDCKPT_BUILD_BENCH=OFF

cmake --build "${BUILD_DIR}" -j "${JOBS}"

# halt_on_error turns any UB report into a test failure instead of a log line.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=0:strict_string_checks=1"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" "$@"

# Chaos smoke on the sanitized binary: the campaign engine exercises the
# coordinator's failure paths (rollback, re-replication, fatal detection)
# far harder than any single unit test, so run it under ASan+UBSan too.
BUILD_DIR="${BUILD_DIR}" "${REPO_ROOT}/scripts/run_chaos_smoke.sh"

# Serve smoke: drives the line protocol end-to-end (parser, LRU cache,
# batched SoA sim kernel, stats encoder) through the sanitized CLI. The
# sim request is sized to hit both the fast path and exact failure steps.
printf '%s\n' \
  'EVAL kind=period protocol=Triple mtbf=3600' \
  'EVAL kind=waste protocol=DoubleNBL mtbf=7200 period=600' \
  'EVAL kind=sim protocol=DoubleNBL mtbf=900 nodes=12 tbase=4000 period=100 trials=40' \
  'EVAL kind=sim protocol=Triple mtbf=900 nodes=12 tbase=4000 period=100 trials=40 weibull-shape=0.7' \
  'STATS' 'QUIT' \
  | "${BUILD_DIR}/src/tools/dckpt" serve > /dev/null

# Serve torture under sanitizers: the poll()-loop TCP front end (partial
# writes, shed and overlong paths, deadline sweeps, drain races) attacked
# by the seeded adversarial scenario suite. Transport-layer UB or a leak
# on any close path fires here, not in production.
"${BUILD_DIR}/tests/serve_torture" --seed 1

echo "check_ubsan: all tests clean under ASan+UBSan"
