#!/usr/bin/env python3
"""Plot the paper's figures from the bench CSV dumps.

Usage:
    mkdir -p out && for b in build/bench/bench_fig*; do $b --csv out; done
    python3 scripts/plot_figures.py out

Produces fig4/fig7 waste surfaces (one panel per protocol), fig5/fig8 ratio
curves and fig6/fig9 success-probability ratio surfaces as PNGs next to the
CSVs. Requires matplotlib; this script is a convenience for visual
comparison against the paper and is not part of the build or tests.
"""
import csv
import sys
from collections import defaultdict
from pathlib import Path


def read_rows(path):
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))


def plot_waste_surface(rows, out_png, title, plt):
    protocols = sorted({r["protocol"] for r in rows})
    fig, axes = plt.subplots(1, len(protocols), figsize=(5 * len(protocols), 4),
                             subplot_kw={"projection": "3d"})
    if len(protocols) == 1:
        axes = [axes]
    for axis, protocol in zip(axes, protocols):
        series = [r for r in rows if r["protocol"] == protocol]
        xs = [float(r["phi_over_R"]) for r in series]
        ys = [float(r["mtbf_s"]) for r in series]
        zs = [float(r["waste"]) for r in series]
        axis.plot_trisurf(xs, [__import__("math").log10(y) for y in ys], zs,
                          cmap="viridis", linewidth=0.1)
        axis.set_xlabel("phi/R")
        axis.set_ylabel("log10 M [s]")
        axis.set_zlabel("waste")
        axis.set_title(protocol)
    fig.suptitle(title)
    fig.tight_layout()
    fig.savefig(out_png, dpi=120)
    print(f"wrote {out_png}")


def plot_ratio_curve(rows, out_png, title, plt):
    xs = [float(r["phi_over_R"]) for r in rows]
    fig, axis = plt.subplots(figsize=(6, 4))
    axis.plot(xs, [float(r["bof_over_nbl"]) for r in rows],
              label="DoubleBoF / DoubleNBL")
    axis.plot(xs, [float(r["triple_over_nbl"]) for r in rows],
              label="Triple / DoubleNBL")
    axis.axhline(1.0, color="gray", linewidth=0.5)
    axis.set_xlabel("phi/R")
    axis.set_ylabel("waste ratio")
    axis.set_title(title)
    axis.legend()
    fig.tight_layout()
    fig.savefig(out_png, dpi=120)
    print(f"wrote {out_png}")


def plot_risk_surface(rows, out_png, title, plt):
    fig, axes = plt.subplots(1, 2, figsize=(11, 4),
                             subplot_kw={"projection": "3d"})
    panels = [("p_nbl", "p_bof", "P(NBL)/P(BoF)"),
              ("p_nbl", "p_triple", "P(NBL)/P(Triple)")]
    for axis, (num, den, label) in zip(axes, panels):
        xs, ys, zs = [], [], []
        for r in rows:
            denominator = float(r[den])
            if denominator <= 0.0:
                continue
            xs.append(float(r["mtbf_s"]) / 60.0)
            ys.append(float(r["life_s"]) / 86400.0)
            zs.append(float(r[num]) / denominator)
        axis.plot_trisurf(xs, ys, zs, cmap="viridis", linewidth=0.1)
        axis.set_xlabel("M [min]")
        axis.set_ylabel("life [days]")
        axis.set_zlabel(label)
        axis.set_title(label)
    fig.suptitle(title)
    fig.tight_layout()
    fig.savefig(out_png, dpi=120)
    print(f"wrote {out_png}")


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    directory = Path(sys.argv[1])
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt  # noqa: F401

    jobs = {
        "fig4.csv": (plot_waste_surface, "Figure 4: waste, Base"),
        "fig7.csv": (plot_waste_surface, "Figure 7: waste, Exa"),
        "fig5.csv": (plot_ratio_curve, "Figure 5: ratios, Base (M = 7h)"),
        "fig8.csv": (plot_ratio_curve, "Figure 8: ratios, Exa (M = 7h)"),
        "fig6.csv": (plot_risk_surface, "Figure 6: success ratios, Base"),
        "fig9.csv": (plot_risk_surface, "Figure 9: success ratios, Exa"),
    }
    for name, (plotter, title) in jobs.items():
        path = directory / name
        if not path.exists():
            print(f"skipping {name} (not found)")
            continue
        plotter(read_rows(path), directory / (path.stem + ".png"), title, plt)


if __name__ == "__main__":
    main()
